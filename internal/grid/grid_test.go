package grid

import (
	"testing"

	"gridsched/internal/core"
	"gridsched/internal/storage"
	"gridsched/internal/topology"
	"gridsched/internal/trace"
	"gridsched/internal/workload"
)

// smallWorkload builds a reduced coadd trace for fast integration runs.
func smallWorkload(t *testing.T, tasks int) *workload.Workload {
	t.Helper()
	cfg := workload.CoaddSmallConfig(workload.DefaultCoaddSeed)
	cfg.Tasks = tasks
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallConfig(w *workload.Workload) Config {
	return Config{
		Workload:       w,
		Topology:       topology.DefaultTiersConfig(1),
		Sites:          4,
		WorkersPerSite: 2,
		CapacityFiles:  2000,
	}
}

func runWC(t *testing.T, cfg Config, metric core.Metric, n int) *Result {
	t.Helper()
	s, err := core.NewWorkerCentric(cfg.Workload, core.WorkerCentricConfig{Metric: metric, ChooseN: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runSA(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := core.NewStorageAffinity(cfg.Workload, core.StorageAffinityConfig{
		Sites:          cfg.Sites,
		WorkersPerSite: cfg.WorkersPerSite,
		CapacityFiles:  cfg.CapacityFiles,
		Policy:         storage.LRU,
		MaxReplicas:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllTasksWorkerCentric(t *testing.T) {
	w := smallWorkload(t, 200)
	cfg := smallConfig(w)
	for _, m := range []core.Metric{core.MetricOverlap, core.MetricRest, core.MetricCombined} {
		res := runWC(t, cfg, m, 1)
		if res.Metrics.TasksCompleted != 200 {
			t.Fatalf("%v: completed %d of 200", m, res.Metrics.TasksCompleted)
		}
		if res.Metrics.MakespanSec <= 0 {
			t.Fatalf("%v: makespan %v", m, res.Metrics.MakespanSec)
		}
		if res.Metrics.TotalFileTransfers() == 0 {
			t.Fatalf("%v: no file transfers recorded", m)
		}
		if res.Metrics.CancelledExecutions != 0 {
			t.Fatalf("%v: worker-centric cancelled %d executions", m, res.Metrics.CancelledExecutions)
		}
	}
}

func TestRunCompletesAllTasksStorageAffinity(t *testing.T) {
	w := smallWorkload(t, 200)
	cfg := smallConfig(w)
	res := runSA(t, cfg)
	if res.Metrics.TasksCompleted != 200 {
		t.Fatalf("completed %d of 200", res.Metrics.TasksCompleted)
	}
	if res.Scheduler != "storage-affinity" {
		t.Fatalf("scheduler = %q", res.Scheduler)
	}
}

func TestRunCompletesWorkqueue(t *testing.T) {
	w := smallWorkload(t, 150)
	cfg := smallConfig(w)
	res, err := Run(cfg, core.NewWorkqueue(w))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TasksCompleted != 150 {
		t.Fatalf("completed %d of 150", res.Metrics.TasksCompleted)
	}
}

func TestDeterministicReplay(t *testing.T) {
	w := smallWorkload(t, 150)
	cfg := smallConfig(w)
	a := runWC(t, cfg, core.MetricCombined, 2)
	b := runWC(t, cfg, core.MetricCombined, 2)
	if a.Metrics.MakespanSec != b.Metrics.MakespanSec {
		t.Fatalf("makespans differ: %v vs %v", a.Metrics.MakespanSec, b.Metrics.MakespanSec)
	}
	if a.Metrics.TotalFileTransfers() != b.Metrics.TotalFileTransfers() {
		t.Fatalf("transfers differ: %d vs %d", a.Metrics.TotalFileTransfers(), b.Metrics.TotalFileTransfers())
	}
	if a.WallEvents != b.WallEvents {
		t.Fatalf("event counts differ: %d vs %d", a.WallEvents, b.WallEvents)
	}
}

func TestTransfersBoundedByReferences(t *testing.T) {
	w := smallWorkload(t, 200)
	cfg := smallConfig(w)
	stats := workload.ComputeStats(w)
	res := runWC(t, cfg, core.MetricRest, 1)
	total := res.Metrics.TotalFileTransfers()
	// Transfers can never exceed total references, and with ample storage
	// can never be below the distinct files touched per site lower bound:
	// at least every referenced file once somewhere.
	if total > int64(stats.TotalReferences) {
		t.Fatalf("transfers %d exceed total references %d", total, stats.TotalReferences)
	}
	if total < int64(stats.TotalFiles) {
		t.Fatalf("transfers %d below distinct files %d (files appeared from nowhere)", total, stats.TotalFiles)
	}
}

func TestLocalityBeatsWorkqueueOnTransfers(t *testing.T) {
	w := smallWorkload(t, 300)
	cfg := smallConfig(w)
	rest := runWC(t, cfg, core.MetricRest, 1)
	wq, err := Run(cfg, core.NewWorkqueue(w))
	if err != nil {
		t.Fatal(err)
	}
	if rest.Metrics.TotalFileTransfers() >= wq.Metrics.TotalFileTransfers() {
		t.Fatalf("rest transfers %d not below workqueue %d; locality not exploited",
			rest.Metrics.TotalFileTransfers(), wq.Metrics.TotalFileTransfers())
	}
}

func TestSmallCapacityForcesEvictions(t *testing.T) {
	w := smallWorkload(t, 300)
	cfg := smallConfig(w)
	cfg.CapacityFiles = 200 // just above max task size
	res := runWC(t, cfg, core.MetricRest, 1)
	var evictions int64
	for i := range res.Metrics.Sites {
		evictions += res.Metrics.Sites[i].Evictions
	}
	if evictions == 0 {
		t.Fatal("no evictions under tight capacity")
	}
	// Tight capacity must cost transfers vs roomy capacity.
	roomy := runWC(t, smallConfig(w), core.MetricRest, 1)
	if res.Metrics.TotalFileTransfers() <= roomy.Metrics.TotalFileTransfers() {
		t.Fatalf("tight capacity transfers %d <= roomy %d",
			res.Metrics.TotalFileTransfers(), roomy.Metrics.TotalFileTransfers())
	}
}

func TestStorageAffinityCancelsReplicas(t *testing.T) {
	w := smallWorkload(t, 120)
	cfg := smallConfig(w)
	cfg.Sites = 6
	cfg.WorkersPerSite = 4 // plenty of idle workers near the tail
	res := runSA(t, cfg)
	if res.Metrics.TasksCompleted != 120 {
		t.Fatalf("completed %d", res.Metrics.TasksCompleted)
	}
	var executed int64
	for i := range res.Metrics.Sites {
		executed += res.Metrics.Sites[i].TasksExecuted
	}
	// Executions = completions + cancelled/abandoned replicas.
	if executed < 120 {
		t.Fatalf("executed %d < tasks", executed)
	}
	if got := executed - 120 - res.Metrics.CancelledExecutions; got != 0 {
		t.Fatalf("execution accounting off by %d (executed=%d cancelled=%d)",
			got, executed, res.Metrics.CancelledExecutions)
	}
}

func TestConfigValidation(t *testing.T) {
	w := smallWorkload(t, 50)
	bad := Config{Workload: nil}
	if err := bad.Normalize(); err == nil {
		t.Error("accepted nil workload")
	}
	cfg := smallConfig(w)
	cfg.Sites = 10_000
	if err := cfg.Normalize(); err == nil {
		t.Error("accepted more sites than topology has")
	}
	cfg = smallConfig(w)
	cfg.CapacityFiles = 10 // below max task size
	if err := cfg.Normalize(); err == nil {
		t.Error("accepted capacity below largest task")
	}
}

func TestNormalizeAppliesTable1Defaults(t *testing.T) {
	w := smallWorkload(t, 50)
	cfg := Config{Workload: w}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Sites != 10 || cfg.WorkersPerSite != 1 || cfg.CapacityFiles != 6000 || cfg.FileSizeBytes != 25e6 {
		t.Fatalf("defaults = %+v, want Table 1", cfg)
	}
	if cfg.Policy != storage.LRU {
		t.Fatalf("default policy = %v", cfg.Policy)
	}
}

func TestWaitTimesAccumulateUnderContention(t *testing.T) {
	w := smallWorkload(t, 200)
	cfg := smallConfig(w)
	cfg.Sites = 2
	cfg.WorkersPerSite = 6 // heavy data-server contention
	res := runWC(t, cfg, core.MetricRest, 1)
	var wait float64
	for i := range res.Metrics.Sites {
		wait += res.Metrics.Sites[i].WaitTimeSum
	}
	if wait <= 0 {
		t.Fatal("no queueing delay with 6 workers per data server")
	}
}

func TestChurnRunsCompleteAllTasks(t *testing.T) {
	w := smallWorkload(t, 150)
	for _, mk := range []struct {
		name  string
		build func(cfg Config) (res *Result)
	}{
		{"rest", func(cfg Config) *Result { return runWC(t, cfg, core.MetricRest, 1) }},
		{"storage-affinity", func(cfg Config) *Result { return runSA(t, cfg) }},
	} {
		cfg := smallConfig(w)
		cfg.ChurnMeanUpSec = 40_000 // a few failures per worker over the run
		cfg.ChurnMeanDownSec = 4_000
		res := mk.build(cfg)
		if res.Metrics.TasksCompleted != 150 {
			t.Fatalf("%s: completed %d of 150 under churn", mk.name, res.Metrics.TasksCompleted)
		}
		if res.Metrics.FailedExecutions == 0 {
			t.Fatalf("%s: churn enabled but no executions failed", mk.name)
		}
	}
}

func TestChurnSlowsMakespan(t *testing.T) {
	w := smallWorkload(t, 200)
	base := smallConfig(w)
	healthy := runWC(t, base, core.MetricRest, 1)
	churned := base
	churned.ChurnMeanUpSec = 30_000
	churned.ChurnMeanDownSec = 15_000
	sick := runWC(t, churned, core.MetricRest, 1)
	if sick.Metrics.MakespanSec <= healthy.Metrics.MakespanSec {
		t.Fatalf("churned makespan %v not above healthy %v",
			sick.Metrics.MakespanSec, healthy.Metrics.MakespanSec)
	}
}

func TestChurnDeterministic(t *testing.T) {
	w := smallWorkload(t, 100)
	cfg := smallConfig(w)
	cfg.ChurnMeanUpSec = 30_000
	cfg.ChurnMeanDownSec = 5_000
	a := runWC(t, cfg, core.MetricRest, 1)
	b := runWC(t, cfg, core.MetricRest, 1)
	if a.Metrics.MakespanSec != b.Metrics.MakespanSec ||
		a.Metrics.FailedExecutions != b.Metrics.FailedExecutions {
		t.Fatalf("churn replay diverged: %v/%d vs %v/%d",
			a.Metrics.MakespanSec, a.Metrics.FailedExecutions,
			b.Metrics.MakespanSec, b.Metrics.FailedExecutions)
	}
}

func TestChurnConfigValidation(t *testing.T) {
	w := smallWorkload(t, 50)
	cfg := smallConfig(w)
	cfg.ChurnMeanUpSec = -1
	if err := cfg.Normalize(); err == nil {
		t.Error("accepted negative churn period")
	}
	cfg = smallConfig(w)
	cfg.ChurnMeanUpSec = 1000
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.ChurnMeanDownSec != 100 {
		t.Fatalf("default down period = %v, want MeanUp/10", cfg.ChurnMeanDownSec)
	}
}

func TestTraceTimelineInvariants(t *testing.T) {
	w := smallWorkload(t, 100)
	cfg := smallConfig(w)
	tr := trace.NewMemory()
	cfg.Tracer = tr
	res := runWC(t, cfg, core.MetricRest, 1)

	assigned := tr.OfKind(trace.TaskAssigned)
	completed := tr.OfKind(trace.TaskCompleted)
	if len(assigned) != 100 || len(completed) != 100 {
		t.Fatalf("assigned=%d completed=%d, want 100 each", len(assigned), len(completed))
	}
	if int(res.Metrics.TasksCompleted) != len(completed) {
		t.Fatalf("trace/metrics disagree: %d vs %d", len(completed), res.Metrics.TasksCompleted)
	}
	// Per task: assigned -> enqueued -> compute-start -> completed, with
	// non-decreasing timestamps.
	for id := int64(0); id < 100; id++ {
		tl := tr.TaskTimeline(id)
		var kinds []trace.Kind
		for i, e := range tl {
			kinds = append(kinds, e.Kind)
			if i > 0 && e.At < tl[i-1].At {
				t.Fatalf("task %d: timeline goes backwards: %+v", id, tl)
			}
		}
		want := []trace.Kind{trace.TaskAssigned, trace.BatchEnqueued, trace.ComputeStart, trace.TaskCompleted}
		if len(kinds) != len(want) {
			t.Fatalf("task %d: kinds = %v", id, kinds)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("task %d: kinds = %v, want %v", id, kinds, want)
			}
		}
	}
	// Makespan equals the last completion timestamp.
	last := completed[len(completed)-1].At
	if last != res.Metrics.MakespanSec {
		t.Fatalf("last completion %v != makespan %v", last, res.Metrics.MakespanSec)
	}
}

func TestTraceRecordsChurnTransitions(t *testing.T) {
	w := smallWorkload(t, 100)
	cfg := smallConfig(w)
	cfg.ChurnMeanUpSec = 30_000
	cfg.ChurnMeanDownSec = 5_000
	tr := trace.NewMemory()
	cfg.Tracer = tr
	runWC(t, cfg, core.MetricRest, 1)
	downs := tr.OfKind(trace.WorkerDown)
	ups := tr.OfKind(trace.WorkerUp)
	if len(downs) == 0 {
		t.Fatal("no worker-down events under churn")
	}
	if len(ups) != len(downs) {
		t.Fatalf("ups %d != downs %d (every outage recovers before run end)", len(ups), len(downs))
	}
}

func TestReplicationPushesPopularFiles(t *testing.T) {
	w := smallWorkload(t, 250)
	cfg := smallConfig(w)
	cfg.Replication = ReplicationConfig{
		Threshold:      2, // any file fetched at 2+ sites is popular
		IntervalSec:    10_000,
		MaxPerInterval: 50,
	}
	tr := trace.NewMemory()
	cfg.Tracer = tr
	res := runWC(t, cfg, core.MetricRest, 1)
	if res.Metrics.TasksCompleted != 250 {
		t.Fatalf("completed %d", res.Metrics.TasksCompleted)
	}
	var replicas int64
	for i := range res.Metrics.Sites {
		replicas += res.Metrics.Sites[i].ProactiveReplicas
	}
	if replicas == 0 {
		t.Fatal("no proactive replicas pushed")
	}
	if got := len(tr.OfKind(trace.FileReplicated)); int64(got) != replicas {
		t.Fatalf("trace saw %d replications, metrics %d", got, replicas)
	}
}

func TestReplicationLeastLoadedStrategy(t *testing.T) {
	w := smallWorkload(t, 150)
	cfg := smallConfig(w)
	cfg.Replication = ReplicationConfig{
		Threshold:      2,
		IntervalSec:    10_000,
		MaxPerInterval: 25,
		Strategy:       ReplicateLeastLoaded,
	}
	res := runWC(t, cfg, core.MetricRest, 1)
	if res.Metrics.TasksCompleted != 150 {
		t.Fatalf("completed %d", res.Metrics.TasksCompleted)
	}
}

func TestReplicationConfigValidation(t *testing.T) {
	w := smallWorkload(t, 50)
	cfg := smallConfig(w)
	cfg.Replication.Threshold = -1
	if err := cfg.Normalize(); err == nil {
		t.Error("accepted negative threshold")
	}
	cfg = smallConfig(w)
	cfg.Replication = ReplicationConfig{Threshold: 3, Strategy: ReplicationStrategy(9)}
	if err := cfg.Normalize(); err == nil {
		t.Error("accepted unknown strategy")
	}
	cfg = smallConfig(w)
	cfg.Replication = ReplicationConfig{Threshold: 3}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Replication.IntervalSec != 3600 || cfg.Replication.MaxPerInterval != 64 || cfg.Replication.Strategy != ReplicateRandom {
		t.Fatalf("defaults = %+v", cfg.Replication)
	}
}

func TestReplicationDeterministic(t *testing.T) {
	w := smallWorkload(t, 120)
	cfg := smallConfig(w)
	cfg.Replication = ReplicationConfig{Threshold: 2, IntervalSec: 5_000, MaxPerInterval: 30}
	a := runWC(t, cfg, core.MetricRest, 1)
	b := runWC(t, cfg, core.MetricRest, 1)
	if a.Metrics.MakespanSec != b.Metrics.MakespanSec || a.WallEvents != b.WallEvents {
		t.Fatalf("replication replay diverged")
	}
}

func TestAnalyzeRealRunTimeline(t *testing.T) {
	w := smallWorkload(t, 150)
	cfg := smallConfig(w)
	tr := trace.NewMemory()
	cfg.Tracer = tr
	res := runWC(t, cfg, core.MetricCombined, 2)
	a, err := trace.Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if a.TasksCompleted != res.Metrics.TasksCompleted {
		t.Fatalf("analysis completions %d != metrics %d", a.TasksCompleted, res.Metrics.TasksCompleted)
	}
	if a.Horizon != res.Metrics.MakespanSec {
		t.Fatalf("horizon %v != makespan %v", a.Horizon, res.Metrics.MakespanSec)
	}
	if len(a.Workers) != cfg.Sites*cfg.WorkersPerSite {
		t.Fatalf("workers analyzed = %d", len(a.Workers))
	}
	busy := a.MeanBusyFraction()
	if busy <= 0 || busy > 1.000001 {
		t.Fatalf("mean busy fraction = %v", busy)
	}
}
