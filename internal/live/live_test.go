package live

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

func liveWorkload(t *testing.T, tasks int) *workload.Workload {
	t.Helper()
	cfg := workload.CoaddSmallConfig(workload.DefaultCoaddSeed)
	cfg.Tasks = tasks
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func baseCfg() Config {
	return Config{
		Sites:          3,
		WorkersPerSite: 2,
		CapacityFiles:  2000,
		Policy:         storage.LRU,
	}
}

func newWC(t *testing.T, w *workload.Workload, metric core.Metric, n int) core.Scheduler {
	t.Helper()
	s, err := core.NewWorkerCentric(w, core.WorkerCentricConfig{Metric: metric, ChooseN: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLiveRunCompletesAllTasks(t *testing.T) {
	w := liveWorkload(t, 120)
	var executed atomic.Int64
	cfg := baseCfg()
	cfg.Execute = func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
		executed.Add(1)
		return nil
	}
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricRest, 1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.TasksCompleted != 120 {
		t.Fatalf("completed %d of 120", sum.TasksCompleted)
	}
	if executed.Load() != 120 {
		t.Fatalf("executed %d", executed.Load())
	}
	if sum.FileTransfers == 0 {
		t.Fatal("no transfers recorded")
	}
}

func TestLiveRunAllSchedulers(t *testing.T) {
	w := liveWorkload(t, 80)
	cfg := baseCfg()
	scheds := []func() core.Scheduler{
		func() core.Scheduler { return newWC(t, w, core.MetricOverlap, 1) },
		func() core.Scheduler { return newWC(t, w, core.MetricCombined, 2) },
		func() core.Scheduler { return core.NewWorkqueue(w) },
		func() core.Scheduler {
			s, err := core.NewStorageAffinity(w, core.StorageAffinityConfig{
				Sites:          cfg.Sites,
				WorkersPerSite: cfg.WorkersPerSite,
				CapacityFiles:  cfg.CapacityFiles,
				Policy:         storage.LRU,
				MaxReplicas:    2,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for _, mk := range scheds {
		sched := mk()
		c, err := NewCluster(cfg, w, sched)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if sum.TasksCompleted != 80 {
			t.Fatalf("%s: completed %d", sched.Name(), sum.TasksCompleted)
		}
	}
}

func TestLiveStageDelaySlowsRun(t *testing.T) {
	w := liveWorkload(t, 20)
	cfg := baseCfg()
	cfg.StageDelay = func(missing int) time.Duration {
		return 200 * time.Microsecond
	}
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricRest, 1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.TasksCompleted != 20 {
		t.Fatalf("completed %d", sum.TasksCompleted)
	}
	if sum.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
}

func TestLiveContextCancellationAborts(t *testing.T) {
	w := liveWorkload(t, 500)
	cfg := baseCfg()
	cfg.Execute = func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricRest, 1))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestLiveExecuteErrorAbortsRun(t *testing.T) {
	w := liveWorkload(t, 200)
	boom := errors.New("disk on fire")
	var calls atomic.Int64
	cfg := baseCfg()
	cfg.Execute = func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
		if calls.Add(1) == 10 {
			return boom
		}
		return nil
	}
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricRest, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestLiveReplicaCancellation(t *testing.T) {
	// One task, two sites with one worker each, replica cap 2, and an
	// Execute that blocks until cancelled for the first runner: the
	// second execution completes and must cancel the first.
	w := &workload.Workload{
		Name:     "single",
		NumFiles: 2,
		Tasks:    []workload.Task{{ID: 0, Files: []workload.FileID{0, 1}}},
	}
	sa, err := core.NewStorageAffinity(w, core.StorageAffinityConfig{
		Sites:          2,
		WorkersPerSite: 1,
		CapacityFiles:  10,
		Policy:         storage.LRU,
		MaxReplicas:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var starts atomic.Int64
	cfg := Config{
		Sites:          2,
		WorkersPerSite: 1,
		CapacityFiles:  10,
		Policy:         storage.LRU,
		PollInterval:   time.Millisecond,
		Execute: func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
			if starts.Add(1) == 1 {
				// First runner hangs until its replica finishes.
				<-ctx.Done()
				return nil
			}
			return nil
		},
	}
	c, err := NewCluster(cfg, w, sa)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sum, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TasksCompleted != 1 {
		t.Fatalf("completed %d, want 1", sum.TasksCompleted)
	}
	if sum.CancelledExecutions != 1 {
		t.Fatalf("cancelled %d, want 1 (the hung replica)", sum.CancelledExecutions)
	}
}

func TestLiveValidation(t *testing.T) {
	w := liveWorkload(t, 10)
	bad := baseCfg()
	bad.Sites = 0
	if _, err := NewCluster(bad, w, newWC(t, w, core.MetricRest, 1)); err == nil {
		t.Error("accepted Sites = 0")
	}
	bad = baseCfg()
	bad.CapacityFiles = 5 // below max task size
	if _, err := NewCluster(bad, w, newWC(t, w, core.MetricRest, 1)); err == nil {
		t.Error("accepted capacity below largest task")
	}
}

// TestLiveNoDuplicateDispatchWithoutExpiry is the long-poll regression
// guarantee: with a worker-centric scheduler (which never replicates) and
// leases long enough that none expire, every task is dispatched and
// executed exactly once, however many workers race for it.
func TestLiveNoDuplicateDispatchWithoutExpiry(t *testing.T) {
	const tasks = 100
	w := liveWorkload(t, tasks)
	perTask := make([]atomic.Int32, tasks)
	cfg := baseCfg()
	cfg.WorkersPerSite = 3
	cfg.LeaseTTL = time.Minute // nothing expires within this test
	cfg.Execute = func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
		perTask[task.ID].Add(1)
		return nil
	}
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricCombined, 2))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.TasksCompleted != tasks {
		t.Fatalf("completed %d of %d", sum.TasksCompleted, tasks)
	}
	for id := range perTask {
		if n := perTask[id].Load(); n != 1 {
			t.Errorf("task %d executed %d times, want exactly 1", id, n)
		}
	}
	if sum.CancelledExecutions != 0 || sum.FailedExecutions != 0 {
		t.Fatalf("spurious cancellations/failures: %+v", sum)
	}
}

func TestLiveRetryOnErrorRecovers(t *testing.T) {
	w := liveWorkload(t, 60)
	var calls atomic.Int64
	cfg := baseCfg()
	cfg.RetryOnError = true
	cfg.Execute = func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
		// Every 7th execution fails transiently.
		if calls.Add(1)%7 == 0 {
			return errors.New("transient overload")
		}
		return nil
	}
	c, err := NewCluster(cfg, w, newWC(t, w, core.MetricRest, 1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.TasksCompleted != 60 {
		t.Fatalf("completed %d of 60 with retries", sum.TasksCompleted)
	}
	if sum.FailedExecutions == 0 {
		t.Fatal("no failures recorded despite injected errors")
	}
}
