// Package live runs the schedulers on a real concurrent runtime instead of
// the discrete-event simulator: one goroutine per worker pulls tasks from a
// shared scheduler service, stages files through a per-site store, executes
// a user-supplied function, and supports replica cancellation via contexts.
//
// It demonstrates that the core schedulers are engine-agnostic (the same
// core.Scheduler drives both the simulator and this runtime) and is the
// piece a downstream user would embed to schedule actual work: plug a real
// Execute function (and, if staging is remote, a real StageDelay).
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// Config describes a live cluster.
type Config struct {
	Sites          int
	WorkersPerSite int
	CapacityFiles  int
	Policy         storage.Policy
	// Execute runs one task. It must honor ctx cancellation promptly:
	// when another replica of the same task completes first, ctx is
	// cancelled. A nil Execute is a no-op (scheduling-only run).
	Execute func(ctx context.Context, at core.WorkerRef, task workload.Task) error
	// StageDelay models the time to fetch the given number of missing
	// files into a site store. Nil means staging is instantaneous.
	StageDelay func(missingFiles int) time.Duration
	// PollInterval is how long a worker in Wait status sleeps before
	// asking again. Defaults to 10ms.
	PollInterval time.Duration
	// RetryOnError controls what an Execute error means. False (default):
	// the error is fatal and aborts the whole run. True: the execution is
	// reported to the scheduler as failed (transient worker trouble) and
	// the task is retried per the strategy's failure path.
	RetryOnError bool
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("live: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("live: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("live: CapacityFiles = %d", c.CapacityFiles)
	}
	return nil
}

// Summary is the outcome of a live run.
type Summary struct {
	TasksCompleted      int           `json:"tasksCompleted"`
	CancelledExecutions int           `json:"cancelledExecutions"`
	FailedExecutions    int           `json:"failedExecutions"`
	FileTransfers       int64         `json:"fileTransfers"`
	Wall                time.Duration `json:"wallNanos"`
}

// site is a live data server: a mutex-serialized store (assumption 3: one
// batch request at a time).
type site struct {
	mu    sync.Mutex
	store *storage.Store
}

// Cluster wires a scheduler to a pool of worker goroutines.
type Cluster struct {
	cfg   Config
	w     *workload.Workload
	sched core.Scheduler
	sites []*site

	mu        sync.Mutex // guards sched, execs, and the fields below
	execs     map[core.WorkerRef]*execution
	completed int
	cancelled int
	failed    int
	transfers int64
	execErr   error              // first Execute failure; aborts the run
	abort     context.CancelFunc // cancels every worker
}

type execution struct {
	task   workload.TaskID
	cancel context.CancelFunc
}

// NewCluster builds a cluster over the workload with the given scheduler.
// The scheduler must be freshly constructed and is driven exclusively by
// the cluster from here on.
func NewCluster(cfg Config, w *workload.Workload, sched core.Scheduler) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	maxFiles := 0
	for _, t := range w.Tasks {
		if len(t.Files) > maxFiles {
			maxFiles = len(t.Files)
		}
	}
	if cfg.CapacityFiles < maxFiles {
		return nil, fmt.Errorf("live: capacity %d below largest task (%d files)", cfg.CapacityFiles, maxFiles)
	}
	c := &Cluster{
		cfg:   cfg,
		w:     w,
		sched: sched,
		execs: make(map[core.WorkerRef]*execution),
	}
	for i := 0; i < cfg.Sites; i++ {
		st, err := storage.New(cfg.CapacityFiles, cfg.Policy)
		if err != nil {
			return nil, err
		}
		c.sites = append(c.sites, &site{store: st})
		sched.AttachSite(i)
	}
	return c, nil
}

// Run starts every worker goroutine and blocks until the workload is
// complete, an Execute call fails, or ctx is cancelled. All goroutines have
// exited when it returns.
func (c *Cluster) Run(ctx context.Context) (*Summary, error) {
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.abort = cancel
	c.mu.Unlock()

	var wg sync.WaitGroup
	for s := 0; s < c.cfg.Sites; s++ {
		for wi := 0; wi < c.cfg.WorkersPerSite; wi++ {
			ref := core.WorkerRef{Site: s, Worker: wi}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.worker(runCtx, ref)
			}()
		}
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.execErr != nil {
		return nil, fmt.Errorf("live: task execution failed: %w", c.execErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("live: run aborted: %w", err)
	}
	if c.sched.Remaining() != 0 {
		return nil, fmt.Errorf("live: %d tasks incomplete after all workers exited", c.sched.Remaining())
	}
	return &Summary{
		TasksCompleted:      c.completed,
		CancelledExecutions: c.cancelled,
		FailedExecutions:    c.failed,
		FileTransfers:       c.transfers,
		Wall:                time.Since(start),
	}, nil
}

// worker is the pull loop: request task → stage files → execute → repeat.
func (c *Cluster) worker(ctx context.Context, ref core.WorkerRef) {
	for ctx.Err() == nil {
		c.mu.Lock()
		task, status := c.sched.NextFor(ref)
		var runCtx context.Context
		if status == core.Assigned {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithCancel(ctx)
			c.execs[ref] = &execution{task: task.ID, cancel: cancel}
		}
		c.mu.Unlock()

		switch status {
		case core.Done:
			return
		case core.Wait:
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.cfg.PollInterval):
			}
			continue
		case core.Assigned:
		default:
			panic(fmt.Sprintf("live: unknown scheduler status %v", status))
		}

		outcome := c.runTask(runCtx, ref, task)

		c.mu.Lock()
		exec := c.execs[ref]
		delete(c.execs, ref)
		if outcome == outcomeFailed {
			// Already reported to the scheduler by runTask.
			c.mu.Unlock()
			continue
		}
		// Re-check under the lock: a replica elsewhere may have completed
		// (and cancelled us) after runTask returned but before we got
		// here; completions are decided in lock order.
		if outcome == outcomeCancelled || runCtx.Err() != nil || ctx.Err() != nil {
			c.cancelled++
			c.mu.Unlock()
			continue
		}
		c.completed++
		victims := c.sched.OnTaskComplete(task.ID, ref)
		for _, v := range victims {
			if ve, ok := c.execs[v]; ok && ve.task == task.ID {
				ve.cancel()
			}
		}
		c.mu.Unlock()
		exec.cancel() // release the context's resources
	}
}

// outcome of one runTask call.
type outcome int

const (
	outcomeCompleted outcome = iota + 1
	outcomeCancelled
	outcomeFailed
)

// runTask stages the task's inputs at the worker's site and executes it.
// The site mutex is held across the staging delay: the data server serves
// one batch request at a time (assumption 3), so same-site workers queue
// behind it.
func (c *Cluster) runTask(ctx context.Context, ref core.WorkerRef, task workload.Task) outcome {
	s := c.sites[ref.Site]
	s.mu.Lock()
	missing := s.store.Missing(task.Files)
	if c.cfg.StageDelay != nil && len(missing) > 0 {
		if delay := c.cfg.StageDelay(len(missing)); delay > 0 {
			select {
			case <-ctx.Done():
				s.mu.Unlock()
				return outcomeCancelled // abandoned before the fetch committed
			case <-time.After(delay):
			}
		}
	}
	fetched, evicted, err := s.store.CommitBatch(task.Files)
	if err != nil {
		s.mu.Unlock()
		panic(fmt.Sprintf("live: commit at site %d: %v", ref.Site, err))
	}
	c.mu.Lock()
	c.transfers += int64(len(fetched))
	c.sched.NoteBatch(ref.Site, task.Files, fetched, evicted)
	c.mu.Unlock()
	s.mu.Unlock()

	if ctx.Err() != nil {
		return outcomeCancelled
	}
	if c.cfg.Execute != nil {
		err := c.cfg.Execute(ctx, ref, task)
		if ctx.Err() != nil {
			return outcomeCancelled // cancellation, whatever Execute returned
		}
		if err != nil {
			if c.cfg.RetryOnError {
				c.mu.Lock()
				c.failed++
				c.sched.OnExecutionFailed(task.ID, ref)
				c.mu.Unlock()
				return outcomeFailed
			}
			// Fatal: abort the whole run rather than hang the job on a
			// silently lost task.
			c.mu.Lock()
			if c.execErr == nil {
				c.execErr = fmt.Errorf("task %d at %+v: %w", task.ID, ref, err)
			}
			abort := c.abort
			c.mu.Unlock()
			abort()
			return outcomeFailed
		}
	}
	if ctx.Err() != nil {
		return outcomeCancelled
	}
	return outcomeCompleted
}
