// Package live runs the schedulers on a real concurrent runtime instead of
// the discrete-event simulator: one goroutine per worker executes a
// user-supplied function against tasks pulled from an embedded gridschedd
// service (internal/service).
//
// Since the service rework, the cluster is a genuine client of the
// scheduler daemon: workers register over the HTTP/JSON protocol (served
// in-process, no sockets), long-poll for leased assignments — replacing the
// old fixed-interval sleep-poll, so idle workers wake the moment work
// appears — heartbeat while executing, and report outcomes. Replica
// cancellation and failure retry ride on the service's lease mechanics.
//
// It demonstrates that the core schedulers are engine-agnostic (the same
// core.Scheduler drives the simulator, the service, and hence this runtime)
// and is the piece a downstream user would embed to schedule actual work in
// one process: plug a real Execute function (and, if staging is remote, a
// real StageDelay). For scheduling across processes or machines, run
// cmd/gridschedd and point workers (cmd/gridworker or client.RunWorker) at
// it instead.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/middleware"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// Config describes a live cluster.
type Config struct {
	Sites          int
	WorkersPerSite int
	CapacityFiles  int
	Policy         storage.Policy
	// Execute runs one task. It must honor ctx cancellation promptly:
	// when another replica of the same task completes first, or the
	// task's lease is lost, ctx is cancelled. A nil Execute is a no-op
	// (scheduling-only run).
	Execute func(ctx context.Context, at core.WorkerRef, task workload.Task) error
	// StageDelay models the time to fetch the given number of missing
	// files into a site store. Nil means staging is instantaneous.
	//
	// Since the service rework the delay is applied by each worker before
	// it executes, while the store commit itself happens at assignment
	// time inside the service. Unlike the simulator's data server
	// (assumption 3) and the pre-service runtime, same-site staging
	// waits are therefore NOT serialized against each other, so wall
	// times with a non-nil StageDelay are not directly comparable to
	// simulator makespans — use the simulator for paper-faithful timing.
	StageDelay func(missingFiles int) time.Duration
	// PollInterval is the long-poll budget of one pull request against
	// the embedded service. Unlike the old sleep-poll it does not delay
	// dispatch — parked pulls are woken the moment work appears — it only
	// bounds how often an idle worker re-checks for cluster shutdown.
	// Defaults to 500ms.
	PollInterval time.Duration
	// LeaseTTL is the service's assignment lease: an execution that stops
	// heartbeating (worker death) for this long is requeued. Executions
	// heartbeat automatically at LeaseTTL/3. Defaults to 2s.
	LeaseTTL time.Duration
	// RetryOnError controls what an Execute error means. False (default):
	// the error is fatal and aborts the whole run. True: the execution is
	// reported to the service as failed (transient worker trouble) and
	// the task is retried per the strategy's failure path.
	RetryOnError bool
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("live: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("live: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("live: CapacityFiles = %d", c.CapacityFiles)
	}
	return nil
}

// Summary is the outcome of a live run.
type Summary struct {
	TasksCompleted      int           `json:"tasksCompleted"`
	CancelledExecutions int           `json:"cancelledExecutions"`
	FailedExecutions    int           `json:"failedExecutions"`
	FileTransfers       int64         `json:"fileTransfers"`
	Wall                time.Duration `json:"wallNanos"`
}

// Cluster wires a pool of worker goroutines to an embedded scheduler
// service.
type Cluster struct {
	cfg   Config
	w     *workload.Workload
	sched core.Scheduler

	mu     sync.Mutex
	runErr error              // first fatal failure; aborts the run
	abort  context.CancelFunc // cancels every worker
}

// NewCluster builds a cluster over the workload with the given scheduler.
// The scheduler must be freshly constructed and is driven exclusively by
// the cluster's service from here on.
func NewCluster(cfg Config, w *workload.Workload, sched core.Scheduler) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if err := (service.Topology{CapacityFiles: cfg.CapacityFiles}).CheckWorkload(w); err != nil {
		return nil, fmt.Errorf("live: %v", err)
	}
	return &Cluster{cfg: cfg, w: w, sched: sched}, nil
}

// fail records the first fatal error and aborts the run.
func (c *Cluster) fail(err error) {
	c.mu.Lock()
	if c.runErr == nil {
		c.runErr = err
	}
	abort := c.abort
	c.mu.Unlock()
	if abort != nil {
		abort()
	}
}

// Run starts the embedded service plus every worker goroutine and blocks
// until the workload is complete, an Execute call fails fatally, or ctx is
// cancelled. All goroutines have exited when it returns.
func (c *Cluster) Run(ctx context.Context) (*Summary, error) {
	start := time.Now()
	svc, err := service.New(service.Config{
		Topology: service.Topology{
			Sites:          c.cfg.Sites,
			WorkersPerSite: c.cfg.WorkersPerSite,
			CapacityFiles:  c.cfg.CapacityFiles,
			Policy:         c.cfg.Policy,
		},
		LeaseTTL: c.cfg.LeaseTTL,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	jobID, err := svc.Submit("live", c.sched.Name(), c.w, c.sched)
	if err != nil {
		return nil, err
	}
	// The same ingress chain a networked gridschedd fronts with: here its
	// job is panic containment (a handler panic becomes a 500 the worker
	// retries instead of unwinding the embedding process) and trace IDs on
	// every in-process request.
	cl := client.InProcess(middleware.Ingress(middleware.Config{}, svc.Handler()))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.mu.Lock()
	c.abort = cancel
	c.mu.Unlock()

	var wg sync.WaitGroup
	for s := 0; s < c.cfg.Sites; s++ {
		for wi := 0; wi < c.cfg.WorkersPerSite; wi++ {
			site := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.runWorker(runCtx, cl, site, jobID)
			}()
		}
	}
	wg.Wait()

	st, stErr := svc.JobStatus(jobID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runErr != nil {
		return nil, fmt.Errorf("live: task execution failed: %w", c.runErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("live: run aborted: %w", err)
	}
	if stErr != nil {
		return nil, stErr
	}
	if st.State != api.JobCompleted {
		return nil, fmt.Errorf("live: %d tasks incomplete after all workers exited", st.Remaining)
	}
	return &Summary{
		TasksCompleted:      st.Completed,
		CancelledExecutions: st.Cancelled,
		FailedExecutions:    st.Failed,
		FileTransfers:       st.Transfers,
		Wall:                time.Since(start),
	}, nil
}

// runWorker runs one worker's protocol loop until the job completes or the
// run is aborted.
func (c *Cluster) runWorker(ctx context.Context, cl *client.Client, site int, jobID string) {
	err := cl.RunWorker(ctx, client.WorkerConfig{
		Site:       &site,
		PollWait:   c.cfg.PollInterval,
		StageDelay: c.cfg.StageDelay,
		Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
			if c.cfg.Execute == nil {
				return nil
			}
			err := c.cfg.Execute(execCtx, ref, a.Task)
			if err != nil && execCtx.Err() == nil && !c.cfg.RetryOnError {
				// Fatal: abort the whole run rather than hang the job on
				// a silently lost task.
				c.fail(fmt.Errorf("task %d at %+v: %w", a.Task.ID, ref, err))
			}
			return err
		},
		// The embedded service hosts exactly this one job, so "no open
		// jobs" and "job completed" coincide; both hooks key off the
		// responses already in hand rather than extra status requests.
		OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
			return resp.OpenJobs == 0, nil
		},
		OnReport: func(_ context.Context, _ *api.Assignment, _ string, rep *api.ReportResponse) bool {
			return rep.JobState == api.JobCompleted
		},
	})
	if err != nil && ctx.Err() == nil {
		c.fail(err)
	}
}
