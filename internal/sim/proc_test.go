package sim

import (
	"testing"
)

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(3.5)
		wake = p.Now()
	})
	k.Run()
	if wake != 3.5 {
		t.Fatalf("woke at %v, want 3.5", wake)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	k := NewKernel()
	var trace []string
	for _, name := range []string{"a", "b"} {
		name := name
		k.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, name)
				p.Sleep(1)
			}
		})
	}
	k.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestQueuePushRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1)
			q.Push(i * 10)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got = %v, want [10 20 30]", got)
	}
}

func TestQueueBuffersWhenNoWaiter(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k)
	q.Push("x")
	q.Push("y")
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	var got []string
	k.Go("late", func(p *Proc) {
		got = append(got, q.Recv(p), q.Recv(p))
	})
	k.Run()
	if got[0] != "x" || got[1] != "y" {
		t.Fatalf("got = %v", got)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			v := q.Recv(p)
			order = append(order, i*100+v)
		})
	}
	k.Go("producer", func(p *Proc) {
		p.Sleep(1)
		for v := 1; v <= 3; v++ {
			q.Push(v)
		}
	})
	k.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// Waiter 0 gets value 1, waiter 1 gets 2, waiter 2 gets 3.
	for i, want := range []int{1, 102, 203} {
		if order[i] != want {
			t.Fatalf("order = %v, want [1 102 203]", order)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woken := 0
	for i := 0; i < 4; i++ {
		k.Go("waiter", func(p *Proc) {
			if v := s.Wait(p); v != "go" {
				t.Errorf("signal value = %v", v)
			}
			woken++
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(2)
		s.Fire("go")
	})
	k.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	s.Fire(7)
	var got any
	var at Time
	k.Go("late", func(p *Proc) {
		got = s.Wait(p)
		at = p.Now()
	})
	k.Run()
	if got != 7 || at != 0 {
		t.Fatalf("got=%v at=%v", got, at)
	}
}

func TestSignalWaitTimeoutFires(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var fired bool
	var at Time
	k.Go("waiter", func(p *Proc) {
		_, fired = s.WaitTimeout(p, 10)
		at = p.Now()
	})
	k.Go("firer", func(p *Proc) {
		p.Sleep(3)
		s.Fire(nil)
	})
	k.Run()
	if !fired || at != 3 {
		t.Fatalf("fired=%v at=%v, want true at 3", fired, at)
	}
}

func TestSignalWaitTimeoutExpires(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var fired bool
	var at Time
	k.Go("waiter", func(p *Proc) {
		_, fired = s.WaitTimeout(p, 2)
		at = p.Now()
	})
	k.Run()
	if fired || at != 2 {
		t.Fatalf("fired=%v at=%v, want false at 2", fired, at)
	}
	// A later Fire must not try to wake the already-resumed proc.
	s.Fire(nil)
	k.Run()
}

func TestSignalDoubleFirePanics(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	s.Fire(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double fire")
		}
	}()
	s.Fire(nil)
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	cleaned := 0
	for i := 0; i < 3; i++ {
		k.Go("stuck", func(p *Proc) {
			defer func() { cleaned++ }()
			q.Recv(p) // never pushed
		})
	}
	k.Run()
	if k.LiveProcs() != 3 {
		t.Fatalf("live procs = %d before shutdown, want 3", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d after shutdown, want 0", k.LiveProcs())
	}
	if cleaned != 3 {
		t.Fatalf("deferred cleanups ran %d times, want 3", cleaned)
	}
}

func TestProcBodyPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("bomb", func(p *Proc) {
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	k.Run()
}

func TestProcSpawnsProc(t *testing.T) {
	k := NewKernel()
	var childAt Time
	k.Go("parent", func(p *Proc) {
		p.Sleep(5)
		k.Go("child", func(c *Proc) {
			c.Sleep(1)
			childAt = c.Now()
		})
	})
	k.Run()
	if childAt != 6 {
		t.Fatalf("child woke at %v, want 6", childAt)
	}
}

// TestRequestReplyPattern exercises the mailbox+signal idiom used by the
// grid actors: client pushes a request carrying a reply signal, server
// serves requests one at a time.
func TestRequestReplyPattern(t *testing.T) {
	type req struct {
		work  Time
		reply *Signal
	}
	k := NewKernel()
	q := NewQueue[req](k)
	k.Go("server", func(p *Proc) {
		for {
			r := q.Recv(p)
			p.Sleep(r.work) // serialized service
			r.reply.Fire(p.Now())
		}
	})
	var done []Time
	for i := 0; i < 3; i++ {
		k.Go("client", func(p *Proc) {
			r := req{work: 10, reply: NewSignal(k)}
			q.Push(r)
			done = append(done, r.reply.Wait(p).(Time))
		})
	}
	k.Run()
	k.Shutdown()
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	// Service is serialized: completions at 10, 20, 30.
	for i, want := range []Time{10, 20, 30} {
		if done[i] != want {
			t.Fatalf("done = %v, want [10 20 30]", done)
		}
	}
}
