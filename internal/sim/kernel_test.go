package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		k.Schedule(d, func() { got = append(got, k.Now()) })
	}
	end := k.Run()
	if end != 5 {
		t.Fatalf("end time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestKernelSameTimeEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time order violated at %d: got %v", i, got[:i+1])
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(1, func() { fired = true })
	e.Cancel()
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var trace []Time
	k.Schedule(1, func() {
		trace = append(trace, k.Now())
		k.Schedule(2, func() { trace = append(trace, k.Now()) })
	})
	k.Run()
	want := []Time{1, 3}
	if len(trace) != 2 || trace[0] != want[0] || trace[1] != want[1] {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() { count++ })
	}
	k.RunUntil(5)
	if count != 5 {
		t.Fatalf("count = %d after RunUntil(5), want 5", count)
	}
	if k.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", k.Pending())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("count = %d after Run, want 10", count)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.RunUntil(Forever)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored?)", count)
	}
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewKernel().Schedule(-1, func() {})
}

// TestKernelDeterministicReplay runs a randomized event cascade twice with
// the same seed and requires identical traces.
func TestKernelDeterministicReplay(t *testing.T) {
	run := func(seed int64) []Time {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, k.Now())
			if depth >= 5 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				k.Schedule(Time(rng.Float64()), func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 20; i++ {
			k.Schedule(Time(rng.Float64()*10), func() { spawn(0) })
		}
		k.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, Run fires them all in
// non-decreasing time order and ends at the max delay.
func TestKernelOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Time(r) / 100
			if d > max {
				max = d
			}
			k.Schedule(d, func() { fired = append(fired, k.Now()) })
		}
		end := k.Run()
		if len(fired) != len(raw) {
			return false
		}
		if len(raw) > 0 && end != max {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
