// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same virtual time fire in scheduling order, so a
// simulation driven by a fixed seed replays identically.
//
// On top of the raw event API, the package offers a coroutine-style process
// model (Proc): each process runs on its own goroutine, but the kernel
// resumes at most one process at a time, preserving determinism while
// letting actors (workers, servers) be written as straight-line pull loops.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Forever is a sentinel meaning "run until no events remain".
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. It can be cancelled before it fires.
//
// Events carrying a process wake-up (wakeProc != nil) are kernel-internal:
// no reference ever escapes, so they are drawn from and returned to a free
// list instead of being allocated per wake, and they carry the resume
// payload in typed fields instead of a closure. External events (Schedule /
// ScheduleAt) are never pooled — their creators may hold references and
// Cancel them at any time, including after they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped

	wakeProc *Proc // non-nil: pooled process-wake event
	wakeMsg  resumeMsg
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use from multiple goroutines except through the Proc API, which
// serializes all process execution.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	procs     int // live (not yet finished) processes
	procSeq   int
	parkedSet map[*Proc]struct{}

	eventPool []*Event // recycled wake events (see Event)

	// stats
	fired uint64
}

// NewKernel returns an empty kernel at time 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired returns the number of events executed so far.
func (k *Kernel) EventsFired() uint64 { return k.fired }

// Schedule registers fn to run after delay seconds of virtual time.
// A negative delay is an error in the caller; it panics to surface the bug.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute virtual time at.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, k.now))
	}
	k.seq++
	e := &Event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// scheduleWake queues a pooled process-wake event after delay seconds.
func (k *Kernel) scheduleWake(delay Time, p *Proc, msg resumeMsg) {
	var e *Event
	if n := len(k.eventPool); n > 0 {
		e = k.eventPool[n-1]
		k.eventPool = k.eventPool[:n-1]
	} else {
		e = &Event{}
	}
	k.seq++
	*e = Event{at: k.now + delay, seq: k.seq, wakeProc: p, wakeMsg: msg}
	heap.Push(&k.events, e)
}

// Unschedule cancels e and, if it has not fired yet, removes it from the
// event queue immediately. Cancel alone leaves a dead entry in the queue
// until its timestamp comes up; callers that cancel and reschedule at high
// frequency (netsim's completion events) use Unschedule so the queue holds
// only live events. Unscheduling an already-fired or already-removed event
// is a no-op.
func (k *Kernel) Unschedule(e *Event) {
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.events, e.index)
	}
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(Forever) }

// RunUntil executes events with timestamp <= limit. Events scheduled beyond
// the limit remain queued; the clock advances to the last executed event (or
// stays put if none ran).
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && len(k.events) > 0 {
		next := k.events[0]
		if next.at > limit {
			break
		}
		heap.Pop(&k.events)
		if next.canceled {
			continue
		}
		k.now = next.at
		k.fired++
		if p := next.wakeProc; p != nil {
			// Recycle before waking: the woken process may schedule new
			// wakes, and nothing else can reference a pooled event.
			msg := next.wakeMsg
			*next = Event{index: -1}
			k.eventPool = append(k.eventPool, next)
			k.wake(p, msg)
			continue
		}
		next.fn()
	}
	return k.now
}

// Pending returns the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return len(k.events) }
