// Policy traces: a deterministic harness that replays a scripted worker
// timeline — heterogeneous speeds, flaky nodes — against a scheduling
// backend and reports makespan and per-worker completion counts. The
// ROADMAP's rule is that every scheduling policy is validated on
// simulation traces before it touches the live path; this file is the
// trace driver, and internal/service wires the real gridschedd service
// (fake clock, seeded RNG) behind the PolicyBackend interface so the same
// script exercises the production dispatch, speculation, and recovery
// code rather than a model of it.
//
// Determinism: the trace runs on the discrete-event Kernel, so all
// activity is single-threaded and ordered by (virtual time, schedule
// sequence). The backend's clock is advanced to the kernel's clock before
// every interaction, which makes time-driven backend behavior (lease
// sweeps, straggler detection) a pure function of the script.
package sim

import (
	"fmt"
	"math"
)

// PolicyWorker scripts one worker's behavior.
type PolicyWorker struct {
	// Site the worker registers at.
	Site int
	// Tags are the capability tags it registers with.
	Tags []string
	// TaskMillis is how long the worker takes to execute one task.
	TaskMillis int64
	// FailEvery makes every Nth execution (1-based) report failure;
	// 0 never fails. FailEvery=1 is a permanently flaky worker.
	FailEvery int
}

// PolicyScript is one scripted timeline.
type PolicyScript struct {
	Workers []PolicyWorker
	// PollMillis is the idle re-poll cadence; defaults to 50ms.
	PollMillis int64
	// LimitMillis aborts the trace if the backend has not drained by
	// then; defaults to 10 minutes of virtual time.
	LimitMillis int64
}

// PolicyBackend is the scheduling surface a trace drives. Implementations
// must be synchronous: every call completes (and has all its effects)
// before it returns.
type PolicyBackend interface {
	// Register adds a worker and returns its id.
	Register(site int, tags []string) (workerID string, err error)
	// Pull asks for one assignment without blocking; ok=false means
	// nothing was dispatchable.
	Pull(workerID string) (assignmentID string, ok bool, err error)
	// Report finishes an assignment. applied is true when the backend
	// accepted it as a fresh, non-stale, non-cancelled completion.
	Report(workerID, assignmentID string, fail bool) (applied bool, err error)
	// AdvanceTo moves the backend clock to the given virtual
	// milliseconds (monotonic across calls) and runs any time-driven
	// maintenance due by then.
	AdvanceTo(millis int64)
	// Open reports whether unfinished work remains.
	Open() (bool, error)
}

// PolicyResult summarizes one trace run.
type PolicyResult struct {
	// MakespanMillis is the virtual time of the last applied completion.
	MakespanMillis int64
	// Applied counts completions the backend accepted as fresh.
	Applied int
	// Failed counts executions scripted to fail.
	Failed int
	// Stale counts reports the backend rejected as stale or cancelled
	// (e.g. the losing lease of a speculated task).
	Stale int
	// AppliedByWorker is Applied split by worker index.
	AppliedByWorker []int
}

// RunPolicyTrace replays script against b and returns the summary. The
// trace ends when the backend reports no open work and every in-flight
// execution has reported; it errors out at LimitMillis.
func RunPolicyTrace(script PolicyScript, b PolicyBackend) (*PolicyResult, error) {
	poll := script.PollMillis
	if poll <= 0 {
		poll = 50
	}
	limit := script.LimitMillis
	if limit <= 0 {
		limit = 10 * 60 * 1000
	}
	k := NewKernel()
	res := &PolicyResult{AppliedByWorker: make([]int, len(script.Workers))}
	ids := make([]string, len(script.Workers))
	execs := make([]int, len(script.Workers)) // executions started, for FailEvery
	var traceErr error
	drained := false

	millis := func() int64 { return int64(math.Round(k.Now() * 1000)) }
	fail := func(err error) {
		if traceErr == nil {
			traceErr = err
		}
		k.Stop()
	}

	var pullLoop func(i int)
	pullLoop = func(i int) {
		if traceErr != nil || drained {
			return
		}
		now := millis()
		b.AdvanceTo(now)
		aid, ok, err := b.Pull(ids[i])
		if err != nil {
			fail(fmt.Errorf("sim: worker %d pull at t=%dms: %w", i, now, err))
			return
		}
		if !ok {
			open, err := b.Open()
			if err != nil {
				fail(err)
				return
			}
			if !open {
				drained = true // this worker observed the drain; all others stop at their next wake
				return
			}
			k.Schedule(float64(poll)/1000, func() { pullLoop(i) })
			return
		}
		execs[i]++
		scripted := script.Workers[i]
		failThis := scripted.FailEvery > 0 && execs[i]%scripted.FailEvery == 0
		k.Schedule(float64(scripted.TaskMillis)/1000, func() {
			if traceErr != nil {
				return
			}
			done := millis()
			b.AdvanceTo(done)
			applied, err := b.Report(ids[i], aid, failThis)
			if err != nil {
				fail(fmt.Errorf("sim: worker %d report at t=%dms: %w", i, done, err))
				return
			}
			switch {
			case failThis:
				res.Failed++
			case applied:
				res.Applied++
				res.AppliedByWorker[i]++
				res.MakespanMillis = done
			default:
				res.Stale++
			}
			pullLoop(i)
		})
	}

	for i := range script.Workers {
		id, err := b.Register(script.Workers[i].Site, script.Workers[i].Tags)
		if err != nil {
			return nil, fmt.Errorf("sim: worker %d register: %w", i, err)
		}
		ids[i] = id
		idx := i
		k.Schedule(0, func() { pullLoop(idx) })
	}
	k.RunUntil(float64(limit) / 1000)
	if traceErr != nil {
		return nil, traceErr
	}
	if !drained {
		open, err := b.Open()
		if err != nil {
			return nil, err
		}
		if open {
			return nil, fmt.Errorf("sim: trace did not drain within %dms (applied %d)", limit, res.Applied)
		}
	}
	return res, nil
}
