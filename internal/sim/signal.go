package sim

// Signal is a one-shot broadcast condition. Processes block in Wait (or
// WaitTimeout) until Fire is called; Fire releases all current and future
// waiters. Signals are the reply channel of choice for request/response
// interactions between processes.
type Signal struct {
	k     *Kernel
	fired bool
	val   any

	waiters map[*Proc]*Event // parked proc -> its timeout event (nil if none)
	order   []*Proc          // wake order (registration order) for determinism
}

// NewSignal returns an unfired signal bound to k.
func NewSignal(k *Kernel) *Signal {
	return &Signal{k: k, waiters: make(map[*Proc]*Event)}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the value passed to Fire (nil before Fire).
func (s *Signal) Value() any { return s.val }

// Fire marks the signal fired with val and schedules every waiter to resume
// at the current virtual time, in registration order. Firing twice panics:
// a one-shot signal with two producers is a logic error worth surfacing.
func (s *Signal) Fire(val any) {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	s.val = val
	for _, p := range s.order {
		timer, ok := s.waiters[p]
		if !ok {
			continue // already timed out and removed
		}
		if timer != nil {
			timer.Cancel()
		}
		delete(s.waiters, p)
		s.k.wakeEvent(p, signalOutcome{fired: true, val: val})
	}
	s.order = nil
}

type signalOutcome struct {
	fired bool
	val   any
}

// Wait blocks p until the signal fires, returning the fired value.
// If the signal already fired, it returns immediately.
func (s *Signal) Wait(p *Proc) any {
	if s.fired {
		return s.val
	}
	s.waiters[p] = nil
	s.order = append(s.order, p)
	msg := p.park()
	out, ok := msg.val.(signalOutcome)
	if !ok {
		panic("sim: signal delivered value of unexpected type")
	}
	return out.val
}

// WaitTimeout blocks p until the signal fires or d seconds elapse.
// It reports whether the signal fired (true) or the timeout won (false).
// This is the primitive behind interruptible work such as cancellable task
// computation.
func (s *Signal) WaitTimeout(p *Proc, d Time) (any, bool) {
	if s.fired {
		return s.val, true
	}
	timer := s.k.Schedule(d, func() {
		if _, ok := s.waiters[p]; !ok {
			return // signal beat the timer
		}
		delete(s.waiters, p)
		s.k.wake(p, resumeMsg{val: signalOutcome{fired: false}})
	})
	s.waiters[p] = timer
	s.order = append(s.order, p)
	msg := p.park()
	out, ok := msg.val.(signalOutcome)
	if !ok {
		panic("sim: signal delivered value of unexpected type")
	}
	return out.val, out.fired
}
