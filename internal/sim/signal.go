package sim

// Signal is a one-shot broadcast condition. Processes block in Wait (or
// WaitTimeout) until Fire is called; Fire releases all current and future
// waiters. Signals are the reply channel of choice for request/response
// interactions between processes.
type Signal struct {
	k     *Kernel
	fired bool
	val   any

	// Waiters in registration (= wake) order; timers[i] is waiter i's
	// timeout event (nil if none). The parallel slices replace an earlier
	// map: signals are created on hot request/reply paths and nearly
	// always have zero or one waiter, so a map allocation per signal and
	// hashing per operation were pure overhead.
	order  []*Proc
	timers []*Event
}

// NewSignal returns an unfired signal bound to k.
func NewSignal(k *Kernel) *Signal {
	return &Signal{k: k}
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the value passed to Fire (nil before Fire).
func (s *Signal) Value() any { return s.val }

// Reset returns a fired signal to the unfired state so it can be reused,
// saving an allocation on request/reply hot loops. Resetting a signal that
// still has waiters (fired or not) panics: their wake is in flight and a
// reuse would tangle two generations of waiters.
func (s *Signal) Reset() {
	if len(s.order) > 0 {
		panic("sim: Reset with waiters registered")
	}
	s.fired = false
	s.val = nil
}

// waiterIndex returns p's index among the registered waiters, or -1.
func (s *Signal) waiterIndex(p *Proc) int {
	for i, w := range s.order {
		if w == p {
			return i
		}
	}
	return -1
}

// dropWaiter removes waiter i preserving registration order.
func (s *Signal) dropWaiter(i int) {
	s.order = append(s.order[:i], s.order[i+1:]...)
	s.timers = append(s.timers[:i], s.timers[i+1:]...)
}

// Fire marks the signal fired with val and schedules every waiter to resume
// at the current virtual time, in registration order. Firing twice panics:
// a one-shot signal with two producers is a logic error worth surfacing.
func (s *Signal) Fire(val any) {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	s.val = val
	for i, p := range s.order {
		if timer := s.timers[i]; timer != nil {
			timer.Cancel()
		}
		s.k.wakeEvent(p, resumeMsg{sig: true, fired: true, val: val})
	}
	s.order = s.order[:0]
	s.timers = s.timers[:0]
}

// Wait blocks p until the signal fires, returning the fired value.
// If the signal already fired, it returns immediately.
func (s *Signal) Wait(p *Proc) any {
	if s.fired {
		return s.val
	}
	s.order = append(s.order, p)
	s.timers = append(s.timers, nil)
	msg := p.park()
	if !msg.sig {
		panic("sim: signal delivered value of unexpected type")
	}
	return msg.val
}

// WaitTimeout blocks p until the signal fires or d seconds elapse.
// It reports whether the signal fired (true) or the timeout won (false).
// This is the primitive behind interruptible work such as cancellable task
// computation.
func (s *Signal) WaitTimeout(p *Proc, d Time) (any, bool) {
	if s.fired {
		return s.val, true
	}
	timer := s.k.Schedule(d, func() {
		i := s.waiterIndex(p)
		if i < 0 {
			return // signal beat the timer
		}
		s.dropWaiter(i)
		s.k.wake(p, resumeMsg{sig: true, fired: false})
	})
	s.order = append(s.order, p)
	s.timers = append(s.timers, timer)
	msg := p.park()
	if !msg.sig {
		panic("sim: signal delivered value of unexpected type")
	}
	return msg.val, msg.fired
}
