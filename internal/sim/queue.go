package sim

// Queue is an unbounded FIFO mailbox connecting processes. Push never
// blocks; Recv blocks the calling process until an item is available.
// Items are delivered in push order; waiting receivers are served in
// arrival order. A Queue must only be used from kernel context (event
// callbacks) or from running processes of the same kernel.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiters returns the number of processes blocked in Recv.
func (q *Queue[T]) Waiters() int { return len(q.waiters) }

// Push enqueues v. If a process is blocked in Recv, it is scheduled to
// resume at the current virtual time with v.
func (q *Queue[T]) Push(v T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wakeEvent(w, resumeMsg{val: v})
		return
	}
	q.items = append(q.items, v)
}

// TryRecv pops the head item without blocking. ok is false if the queue is
// empty.
func (q *Queue[T]) TryRecv() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Recv pops the head item, blocking p until one is available.
func (q *Queue[T]) Recv(p *Proc) T {
	if v, ok := q.TryRecv(); ok {
		return v
	}
	q.waiters = append(q.waiters, p)
	msg := p.park()
	v, ok := msg.val.(T)
	if !ok {
		panic("sim: queue delivered value of unexpected type")
	}
	return v
}
