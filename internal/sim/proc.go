package sim

import (
	"errors"
	"fmt"
)

// errKilled is the sentinel panic value used to unwind a process goroutine
// during Kernel.Shutdown. It never escapes the package.
var errKilled = errors.New("sim: process killed")

type resumeMsg struct {
	killed bool
	// Signal outcomes ride in typed fields rather than a boxed struct:
	// boxing an outcome per wake was a measurable allocation on the
	// request/reply hot path.
	sig   bool // the wake comes from a Signal
	fired bool // Signal wakes: fired (true) vs timeout (false)
	val   any
}

// Proc is a simulated process: a goroutine whose execution is serialized by
// the kernel so that at most one process runs at any instant. All blocking
// methods (Sleep, Queue.Recv, Signal.Wait, ...) must be called from the
// process's own goroutine.
type Proc struct {
	k    *Kernel
	name string
	id   int

	resume chan resumeMsg // kernel -> proc
	yield  chan struct{}  // proc -> kernel
	done   bool           // set by the proc goroutine before its final yield
	parked bool
	err    any // captured panic from the body, re-raised on the kernel side
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the kernel-unique process id.
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Go spawns a new process whose body starts at the current virtual time.
// The body must only block through Proc methods.
func (k *Kernel) Go(name string, body func(p *Proc)) *Proc {
	k.procSeq++
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.procSeq,
		resume: make(chan resumeMsg),
		yield:  make(chan struct{}),
	}
	k.procs++
	k.Schedule(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && r != errKilled { //nolint:errorlint // sentinel identity check
					p.err = r
				}
				p.done = true
				p.yield <- struct{}{}
			}()
			body(p)
		}()
		k.await(p)
	})
	return p
}

// await blocks the kernel until p parks or finishes, then performs
// end-of-life bookkeeping. It must be called from kernel context.
func (k *Kernel) await(p *Proc) {
	<-p.yield
	if p.done {
		k.procs--
		delete(k.parkedSet, p)
		if p.err != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.err))
		}
	}
}

// park suspends the calling process until a wake delivers a resumeMsg.
// It must only be called from the process goroutine, after arranging a
// wake-up (timer event, queue registration, or signal registration).
func (p *Proc) park() resumeMsg {
	p.parked = true
	if p.k.parkedSet == nil {
		p.k.parkedSet = make(map[*Proc]struct{})
	}
	p.k.parkedSet[p] = struct{}{}
	p.yield <- struct{}{}
	msg := <-p.resume
	p.parked = false
	if msg.killed {
		panic(errKilled)
	}
	return msg
}

// wake resumes a parked process and blocks kernel execution until the
// process parks again or finishes. Must be called from kernel context
// (inside an event callback or from Shutdown).
func (k *Kernel) wake(p *Proc, msg resumeMsg) {
	delete(k.parkedSet, p)
	p.resume <- msg
	k.await(p)
}

// wakeEvent schedules an immediate wake for p carrying msg.
func (k *Kernel) wakeEvent(p *Proc, msg resumeMsg) {
	k.scheduleWake(0, p, msg)
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.scheduleWake(d, p, resumeMsg{})
	p.park()
}

// Yield suspends the process and reschedules it at the same virtual time,
// after all currently queued same-time events.
func (p *Proc) Yield() { p.Sleep(0) }

// LiveProcs returns the number of processes that have been spawned and have
// not yet finished.
func (k *Kernel) LiveProcs() int { return k.procs }

// Shutdown force-terminates every parked process. It must be called after
// Run returns (kernel context). Each parked process unwinds via an internal
// panic that runs its deferred cleanups; its goroutine exits before Shutdown
// returns, so no goroutines leak.
func (k *Kernel) Shutdown() {
	for len(k.parkedSet) > 0 {
		// Pick the parked proc with the smallest id for determinism.
		var victim *Proc
		for p := range k.parkedSet {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		k.wake(victim, resumeMsg{killed: true})
	}
}
