// Package benchsuite holds the single implementation of the repository's
// performance benchmarks. Two consumers run the same bodies: the
// `go test -bench` entry points (bench_test.go at the root,
// internal/service's dispatch benchmarks) that CI smoke-runs, and
// cmd/gridbench, which records the JSON perf trajectory
// (BENCH_PR2.json, …). Keeping one copy means the committed trajectory
// always measures exactly what CI exercises.
//
// Setup errors panic rather than calling testing.B failure methods: the
// same closures must run under testing.Benchmark in a non-test binary
// (gridbench), where a B has no usable logger and b.Fatal crashes
// uninformatively.
package benchsuite

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/middleware"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

func must(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("benchsuite: %s: %v", what, err))
	}
}

// ExperimentOptions is the reduced scale shared by all experiment
// benchmarks (600 tasks, one seed) so a full `go test -bench=.` finishes
// in minutes; paper-scale numbers come from cmd/experiments.
func ExperimentOptions() gridsched.ExperimentOptions {
	return gridsched.ExperimentOptions{Tasks: 600, Seeds: []int64{1}, Parallelism: 4}
}

// Experiment returns a benchmark running one registry artifact per
// iteration at the reduced scale.
func Experiment(id string) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reports, err := gridsched.RunExperiment(id, ExperimentOptions())
			must(err, id)
			if len(reports) == 0 || len(reports[0].Rows) == 0 {
				panic(fmt.Sprintf("benchsuite: %s: empty report", id))
			}
		}
	}
}

// ExperimentFullScale returns a benchmark running an artifact at full
// 6,000-task scale (workload generation only; no simulation).
func ExperimentFullScale(id string) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := gridsched.RunExperiment(id, gridsched.ExperimentOptions{Tasks: 6000, Seeds: []int64{1}})
			must(err, id)
		}
	}
}

// SchedulerRequest returns a benchmark measuring one worker-centric
// scheduling request (CalculateWeight + ChooseTask, served from the
// incremental weight-class indexes — see PERFORMANCE.md) on the full
// 6,000-task queue, amortizing the NoteBatch updates of the steady-state
// dispatch cycle.
func SchedulerRequest(algorithm string) func(b *testing.B) {
	return func(b *testing.B) {
		w, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 6000)
		must(err, "workload")
		cfg := gridsched.SimulationConfig{Workload: w}
		b.ResetTimer()
		i := 0
		for i < b.N {
			b.StopTimer()
			sched, err := gridsched.NewScheduler(algorithm, w, cfg, 1)
			must(err, algorithm)
			sched.AttachSite(0)
			b.StartTimer()
			// Drain up to 1000 requests per scheduler instance.
			for j := 0; j < 1000 && i < b.N; j++ {
				task, st := sched.NextFor(core.WorkerRef{Site: 0})
				if st != core.Assigned {
					break
				}
				i++
				sched.NoteBatch(0, task.Files, task.Files, nil)
			}
		}
	}
}

// EndToEndSimulation measures a complete 600-task, 4-site run under
// combined.2 (scheduling + storage + network + kernel).
func EndToEndSimulation(b *testing.B) {
	w, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 600)
	must(err, "workload")
	cfg := gridsched.SimulationConfig{Workload: w, Sites: 4, CapacityFiles: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := gridsched.RunSimulation(cfg, "combined.2")
		must(err, "simulation")
	}
}

// WorkloadGeneration measures synthetic Coadd trace generation at
// evaluation scale.
func WorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 6000)
		must(err, "workload")
	}
}

// NewDispatchService builds the service the dispatch benchmarks run
// against. Close it when done.
func NewDispatchService() *service.Service {
	svc, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 4, WorkersPerSite: 4, CapacityFiles: 1024},
		NewScheduler: gridsched.SchedulerFactory(),
	})
	must(err, "service")
	return svc
}

// NewJournaledDispatchService is NewDispatchService with the write-ahead
// journal enabled at the given fsync mode, over a throwaway data dir
// (remove it after Close). Snapshots are pushed out of the measurement
// window: they are a compaction cost with their own cadence knob, and
// PERFORMANCE.md tracks the per-dispatch journal overhead.
func NewJournaledDispatchService(mode journal.Mode) (*service.Service, string) {
	dir, err := os.MkdirTemp("", "gridsched-bench-journal-*")
	must(err, "journal dir")
	svc, err := service.New(service.Config{
		Topology:      service.Topology{Sites: 4, WorkersPerSite: 4, CapacityFiles: 1024},
		NewScheduler:  gridsched.SchedulerFactory(),
		DataDir:       dir,
		Fsync:         mode,
		SnapshotEvery: 1 << 30,
	})
	must(err, "journaled service")
	return svc, dir
}

// ServiceDispatchJournaled measures the dispatch round-trip with the
// write-ahead journal on — the number the "within 2x of the in-memory
// path" acceptance bar reads.
func ServiceDispatchJournaled(mode journal.Mode) func(b *testing.B) {
	return func(b *testing.B) {
		svc, dir := NewJournaledDispatchService(mode)
		defer os.RemoveAll(dir)
		defer svc.Close()
		DispatchRoundTrip(b, client.InProcess(svc.Handler()))
	}
}

// dispatchWorkload: one file per task so staging cost is constant and the
// benchmark isolates the service dispatch path, not the cache.
func dispatchWorkload(tasks int) *workload.Workload {
	w := &workload.Workload{Name: "bench", NumFiles: 512}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 512)},
		})
	}
	return w
}

// DispatchRoundTrip measures the pull→assign→report round-trip through
// the full HTTP/JSON protocol against the given client.
func DispatchRoundTrip(b *testing.B, cl *client.Client) {
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	must(err, "register")
	submit := func() {
		w := dispatchWorkload(100_000)
		_, err := cl.SubmitJob(ctx, "bench", "workqueue", 0, w)
		must(err, "submit")
	}
	submit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Pull(ctx, reg.WorkerID, 0)
		must(err, "pull")
		if resp.Status != api.StatusAssigned {
			// Job drained mid-benchmark; refill outside the hot path's
			// accounting concerns (rare: every 100k iterations).
			submit()
			continue
		}
		_, err = cl.Report(ctx, resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess)
		must(err, "report")
	}
}

// ServiceDispatchInProcess is DispatchRoundTrip over the in-process
// transport: protocol + JSON codec + scheduler, no sockets.
func ServiceDispatchInProcess(b *testing.B) {
	svc := NewDispatchService()
	defer svc.Close()
	DispatchRoundTrip(b, client.InProcess(svc.Handler()))
}

// ServiceDispatchIngress is ServiceDispatchInProcess with the full
// production middleware chain in front of the mux — trace IDs, panic
// recovery, bearer auth, a permissive rate limiter, and a shedder whose
// bound is never breached — so the delta against ServiceDispatchInProcess
// is the chain's no-shed overhead. The PR 6 acceptance bar holds it to
// ≤5% of the bare-mux dispatch round-trip.
func ServiceDispatchIngress(b *testing.B) {
	svc := NewDispatchService()
	defer svc.Close()
	chain := middleware.Ingress(middleware.Config{
		Log: io.Discard,
		Tokens: middleware.NewTokenStore(map[string]middleware.Principal{
			"bench-token": {Tenant: "bench"},
		}),
		RateLimit:    1e9, // generous: the limiter runs, nothing throttles
		ShedP99:      time.Hour,
		TenantWeight: svc.TenantWeight,
	}, svc.Handler())
	cl := client.InProcess(chain)
	cl.AuthToken = "bench-token"
	DispatchRoundTrip(b, cl)
}

// ServiceDispatchContended measures the dispatch round-trip with six
// tenant-weighted jobs resident at once: every pull runs the fair-share
// arbiter (heap pop, quota check, charge, reinsert — see
// internal/service/arbiter.go) across a contended job set instead of
// PR 1's first-job scan. Compare against ServiceDispatchInProcess for the
// arbitration overhead.
func ServiceDispatchContended(b *testing.B) {
	svc := NewDispatchService()
	defer svc.Close()
	cl := client.InProcess(svc.Handler())
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	must(err, "register")
	tenants := []struct {
		name   string
		weight int
	}{{"alpha", 3}, {"beta", 2}, {"gamma", 1}}
	submit := func() {
		for _, t := range tenants {
			for k := 0; k < 2; k++ {
				w := dispatchWorkload(50_000)
				_, err := cl.SubmitTenantJob(ctx, t.name, t.weight,
					fmt.Sprintf("bench-%s-%d", t.name, k), "workqueue", 0, w)
				must(err, "submit "+t.name)
			}
		}
	}
	submit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Pull(ctx, reg.WorkerID, 0)
		must(err, "pull")
		if resp.Status != api.StatusAssigned {
			// All six jobs drained mid-benchmark; refill (rare: every 300k
			// iterations).
			submit()
			continue
		}
		_, err = cl.Report(ctx, resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess)
		must(err, "report")
	}
}

// ServiceDispatchSpeculative measures one full straggler-mitigation
// cycle on the dispatch path: a sweep that flags a straggling lease, the
// speculative twin's grant, the twin's winning report, and the beaten
// primary's cancelled report plus its next pull. The service runs a
// virtual clock the loop advances 20ms per iteration — far past the
// primed 2x-p95 threshold — so every iteration exercises the staging
// scan, the twin grant (which bypasses NextFor), and first-report-wins.
// Drives the Service API directly (no transport codec), like
// ServiceDispatchParallel: the number isolates the mitigation machinery,
// not the wire.
func ServiceDispatchSpeculative(b *testing.B) {
	var ms atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	svc, err := service.New(service.Config{
		Topology:      service.Topology{Sites: 2, WorkersPerSite: 2, CapacityFiles: 1024},
		NewScheduler:  gridsched.SchedulerFactory(),
		LeaseTTL:      time.Minute,
		SweepInterval: time.Millisecond,
		Clock:         func() time.Time { return base.Add(time.Duration(ms.Load()) * time.Millisecond) },
		Speculation:   true,
	})
	must(err, "service")
	defer svc.Close()

	submit := func() {
		_, err := svc.SubmitByName("bench-spec", "workqueue", dispatchWorkload(100_000), 0, "")
		must(err, "submit")
	}
	submit()
	slow, err := svc.Register(0)
	must(err, "register slow")
	fast, err := svc.Register(1)
	must(err, "register fast")

	// Prime the job's duration distribution: three 5ms completions set a
	// 10ms speculation threshold, so a lease aged one 20ms step straggles.
	for i := 0; i < 3; i++ {
		resp, err := svc.Pull(nil, fast.WorkerID, 0)
		must(err, "prime pull")
		if resp.Status != api.StatusAssigned {
			panic("benchsuite: prime pull got no assignment")
		}
		ms.Add(5)
		_, err = svc.Report(resp.Assignment.ID, fast.WorkerID, api.OutcomeSuccess)
		must(err, "prime report")
	}
	resp, err := svc.Pull(nil, slow.WorkerID, 0)
	must(err, "straggler pull")
	if resp.Status != api.StatusAssigned {
		panic("benchsuite: no straggler lease")
	}
	hold := resp.Assignment.ID

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Add(20)
		// The sweep at pull entry stages the straggler; the pull grants
		// its speculative twin.
		resp, err := svc.Pull(nil, fast.WorkerID, 0)
		must(err, "pull")
		if resp.Status != api.StatusAssigned {
			// Job drained mid-benchmark; refill outside the hot path's
			// accounting concerns (rare: every ~100k iterations).
			submit()
			continue
		}
		_, err = svc.Report(resp.Assignment.ID, fast.WorkerID, api.OutcomeSuccess)
		must(err, "twin report")
		// The beaten primary reports in (cancelled, never a second
		// completion) and takes a fresh task — the next straggler.
		_, err = svc.Report(hold, slow.WorkerID, api.OutcomeSuccess)
		must(err, "primary report")
		next, err := svc.Pull(nil, slow.WorkerID, 0)
		must(err, "straggler pull")
		if next.Status != api.StatusAssigned {
			// The twin+primary reports just drained the job's last task —
			// the same ~100k-iteration boundary as the fast path above,
			// landing on this pull instead. Refill and retry.
			submit()
			next, err = svc.Pull(nil, slow.WorkerID, 0)
			must(err, "straggler pull")
			if next.Status != api.StatusAssigned {
				panic("benchsuite: straggler starved")
			}
		}
		hold = next.Assignment.ID
	}
}

// ParallelWorkers and ParallelJobs fix the scale of the multi-core
// dispatch benchmark: 8 concurrent workers drawing from 8 resident jobs,
// the ISSUE-5 acceptance configuration.
const (
	ParallelWorkers = 8
	ParallelJobs    = 8
)

// ServiceDispatchParallel measures aggregate dispatch throughput with
// ParallelWorkers workers pulling and reporting concurrently against
// ParallelJobs resident worker-centric jobs, driving the Service API
// directly (no HTTP codec, so the number isolates the dispatch core, not
// the transport). The shards parameter sets the lock-stripe count:
// shards=1 approximates the old single-mutex service (every job behind
// one stripe), larger counts let jobs' scheduler work proceed in
// parallel. Compare shards=1 against shards=8 on a multi-core runner for
// the scaling headline; on a single-core machine the two should be within
// noise, which bounds the refactor's overhead.
func ServiceDispatchParallel(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		svc, err := service.New(service.Config{
			Topology:     service.Topology{Sites: ParallelWorkers, WorkersPerSite: 1, CapacityFiles: 1024},
			NewScheduler: gridsched.SchedulerFactory(),
			Shards:       shards,
		})
		must(err, "service")
		defer svc.Close()

		var submitMu sync.Mutex
		batch := 0
		submit := func() {
			submitMu.Lock()
			defer submitMu.Unlock()
			if svc.Counters().OpenJobs.Load() > int64(ParallelJobs/2) {
				return // another worker already refilled
			}
			for k := 0; k < ParallelJobs; k++ {
				_, err := svc.SubmitByName(fmt.Sprintf("par-%d-%d", batch, k), "rest",
					dispatchWorkload(50_000), int64(k), "")
				must(err, "submit")
			}
			batch++
		}
		submit()
		regs := make([]string, ParallelWorkers)
		for i := range regs {
			reg, err := svc.Register(i)
			must(err, "register")
			regs[i] = reg.WorkerID
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for i := 0; i < ParallelWorkers; i++ {
			n := b.N / ParallelWorkers
			if i < b.N%ParallelWorkers {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(workerID string, n int) {
				defer wg.Done()
				for done := 0; done < n; {
					resp, err := svc.Pull(nil, workerID, 0)
					must(err, "pull")
					if resp.Status != api.StatusAssigned {
						// Jobs drained mid-benchmark (rare: every 400k
						// dispatches); refill outside the counted work.
						submit()
						continue
					}
					_, err = svc.Report(resp.Assignment.ID, workerID, api.OutcomeSuccess)
					must(err, "report")
					done++
				}
			}(regs[i], n)
		}
		wg.Wait()
	}
}

// Handler exposes the service handler type for TCP variants without
// making consumers import net/http/httptest here.
func Handler(svc *service.Service) http.Handler { return svc.Handler() }

// ServiceDispatchPartitioned measures aggregate durable dispatch
// throughput across parts independent gridschedd partitions, each a
// journaled SyncAlways service behind its own real TCP socket — the
// horizontal scale-out configuration of docs/PARTITIONING.md with the
// router bypassed (partition-aware clients talk to the owning partition
// directly, so the steady-state data path has no extra hop to measure).
// One streaming binary-codec worker per partition: every granted lease
// frame and every report batch costs one fsync on that partition's WAL,
// which is the durable dispatch bottleneck partitioning multiplies.
// Each iteration is one completed task, aggregated across partitions,
// so dispatches/sec here scales with how well the independent WAL
// fsyncs overlap — the ISSUE-10 acceptance bar reads parts=2 against
// parts=1 (≥1.7× on a multi-core host; a single-core host still
// overlaps the fsync I/O waits, just less — PERFORMANCE.md records what
// each recorded run's host could show, with NumCPU in the JSON).
//
// PartitionedBatch and PartitionedWorkers fix the per-partition scale:
// one streaming worker at WireBatch pipeline depth keeps each
// partition's serial chain honest — its CPU work and its WAL fsyncs
// interleave, the shape one steady worker presents — without letting a
// single partition saturate the host by itself, which would flatten
// the curve the benchmark exists to show.
const (
	PartitionedBatch   = 32
	PartitionedWorkers = 1
)

func ServiceDispatchPartitioned(parts int) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		type streamWorker struct {
			cl   *client.Client
			part int
			wid  string
			ls   *client.LeaseStream
		}
		var workers []*streamWorker
		for i := 0; i < parts; i++ {
			dir, err := os.MkdirTemp("", "gridsched-bench-part-*")
			must(err, "partition dir")
			defer os.RemoveAll(dir)
			svc, err := service.New(service.Config{
				Topology:       service.Topology{Sites: PartitionedWorkers, WorkersPerSite: 1, CapacityFiles: 1024},
				NewScheduler:   gridsched.SchedulerFactory(),
				DataDir:        dir,
				Fsync:          journal.SyncAlways,
				SnapshotEvery:  1 << 30,
				PartitionIndex: i,
				PartitionCount: parts,
			})
			must(err, "partitioned service")
			defer svc.Close()
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			cl := client.New(ts.URL, nil)
			must(cl.SetCodec("binary"), "codec")
			_, err = cl.SubmitJob(ctx, fmt.Sprintf("bench-part-%d", i), "workqueue", 0, dispatchWorkload(100_000))
			must(err, "submit")
			for w := 0; w < PartitionedWorkers; w++ {
				reg, err := cl.Register(ctx, nil)
				must(err, "register")
				ls, err := cl.StreamLeases(ctx, reg.WorkerID, PartitionedBatch)
				must(err, "stream")
				defer ls.Close()
				workers = append(workers, &streamWorker{cl: cl, part: i, wid: reg.WorkerID, ls: ls})
			}
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for i, w := range workers {
			n := b.N / len(workers)
			if i < b.N%len(workers) {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(w *streamWorker, n int) {
				defer wg.Done()
				items := make([]api.ReportItem, 0, PartitionedBatch)
				for done := 0; done < n; {
					lb, err := w.ls.Next()
					must(err, "partitioned stream next")
					if len(lb.Assignments) == 0 {
						if lb.OpenJobs == 0 {
							// This partition's job drained mid-benchmark;
							// refill (rare: every 100k tasks per partition).
							_, err := w.cl.SubmitJob(ctx, fmt.Sprintf("bench-part-%d", w.part), "workqueue", 0, dispatchWorkload(100_000))
							must(err, "refill submit")
						}
						continue // keepalive frame
					}
					items = items[:0]
					for k := range lb.Assignments {
						items = append(items, api.ReportItem{AssignmentID: lb.Assignments[k].ID, Outcome: api.OutcomeSuccess})
					}
					res, err := w.cl.ReportBatch(ctx, w.wid, items)
					must(err, "partitioned report batch")
					for k := range res {
						if !res[k].Accepted {
							panic("benchsuite: partitioned report rejected (lease lapsed mid-benchmark?)")
						}
					}
					done += len(items)
				}
			}(w, n)
		}
		wg.Wait()
	}
}

// WireBatch is the streaming pipeline depth of the wire benchmark — the
// batch size the HTTP and codec costs amortize across.
const WireBatch = 32

// ServiceDispatchWireJSON measures the classic protocol over a real TCP
// socket: one JSON long-poll pull plus one JSON report per task, two full
// HTTP round trips each. This is the baseline ServiceDispatchWireStream
// is read against.
func ServiceDispatchWireJSON(b *testing.B) {
	svc := NewDispatchService()
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	DispatchRoundTrip(b, client.New(ts.URL, nil))
}

// ServiceDispatchWireStream measures the wire-speed path over the same
// kind of TCP socket: one persistent lease stream pushing assignment
// batches, outcomes returned through batched reports, binary codec on
// every payload. Each iteration is still one completed task — the ISSUE-8
// acceptance bar reads this against ServiceDispatchWireJSON (≥3× the
// throughput, ≥5× fewer allocs/op).
func ServiceDispatchWireStream(b *testing.B) {
	svc := NewDispatchService()
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)
	must(cl.SetCodec("binary"), "codec")
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	must(err, "register")
	submit := func() {
		w := dispatchWorkload(100_000)
		_, err := cl.SubmitJob(ctx, "bench", "workqueue", 0, w)
		must(err, "submit")
	}
	submit()
	ls, err := cl.StreamLeases(ctx, reg.WorkerID, WireBatch)
	must(err, "stream")
	defer ls.Close()
	items := make([]api.ReportItem, 0, WireBatch)
	b.ResetTimer()
	for done := 0; done < b.N; {
		lb, err := ls.Next()
		must(err, "stream next")
		if len(lb.Assignments) == 0 {
			if lb.OpenJobs == 0 {
				// Job drained mid-benchmark; refill outside the hot path's
				// accounting concerns (rare: every 100k tasks).
				submit()
			}
			continue // keepalive frame
		}
		items = items[:0]
		for i := range lb.Assignments {
			items = append(items, api.ReportItem{AssignmentID: lb.Assignments[i].ID, Outcome: api.OutcomeSuccess})
		}
		res, err := cl.ReportBatch(ctx, reg.WorkerID, items)
		must(err, "report batch")
		for i := range res {
			if !res[i].Accepted {
				panic("benchsuite: wire-stream report rejected (lease lapsed mid-benchmark?)")
			}
		}
		done += len(items)
	}
}
