// Package netsim simulates wide-area data transfers at flow level.
//
// Concurrent flows share link capacity max-min fairly (progressive
// filling), the bandwidth-sharing model SimGrid uses for TCP-like flows.
// Whenever a flow starts or finishes, the rates of the affected flows are
// recomputed and their completion events rescheduled, so contention between
// sites transferring through shared WAN links is modeled continuously.
//
// # Scoped re-rating
//
// A flow arrival or departure can only change the allocation of flows it
// shares a link with, directly or transitively: the flow↔link bipartite
// graph decomposes into connected components, and max-min allocation is
// solved independently per component. rerate therefore recomputes only the
// component(s) touching the changed links — flows in other components keep
// their rates, remaining-byte trajectories, and completion events
// untouched, which is exact, not an approximation. Within the recomputed
// component the arithmetic (fair-share divisions, capacity subtractions,
// bottleneck tie-breaks) is performed in the same deterministic order as a
// global recomputation, so results are bit-identical to re-rating
// everything. All scratch state is reused across calls; the old
// implementation's per-call maps and sorting dominated the simulator's
// allocation profile.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"gridsched/internal/sim"
	"gridsched/internal/topology"
)

// completionSlack guards against floating-point drift when rescheduling
// completion events: a flow whose remaining bytes fall below this many
// bytes is considered finished.
const completionSlack = 1e-6

// Flow is an active transfer between two nodes.
type Flow struct {
	ID        int
	Src, Dst  topology.NodeID
	Bytes     float64 // total payload
	remaining float64
	rate      float64 // current allocation, bytes/s
	route     []topology.LinkID
	completed *sim.Event
	done      *sim.Signal
	started   sim.Time
	updated   sim.Time // last time remaining was settled

	// progressive-filling scratch state
	frozen   bool
	prevRate float64
	mark     uint32 // component-walk visitation epoch
}

// Rate returns the flow's current max-min fair allocation in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet delivered as of the last re-rate.
func (f *Flow) Remaining() float64 { return f.remaining }

// Stats aggregates network activity over a run.
type Stats struct {
	FlowsStarted   int
	FlowsCompleted int
	BytesDelivered float64
	// LinkBytes accumulates payload bytes carried per link (a flow's bytes
	// count once on every link of its route).
	LinkBytes map[topology.LinkID]float64
}

// Network is the flow-level simulator bound to a kernel and a graph.
type Network struct {
	k      *sim.Kernel
	g      *topology.Graph
	active []*Flow // ascending flow ID (IDs are assigned monotonically)
	seq    int
	stats  Stats

	// linkFlows registers, per link, the active flows routed across it.
	// Maintained on flow start/finish; element order within a link is
	// irrelevant (see the order analysis on rerate).
	linkFlows [][]*Flow

	// Re-rate scratch, reused across calls. linkMark/flow marks carry an
	// epoch instead of being cleared; capacity/unfrozen are reinitialized
	// only for the links of the recomputed component.
	epoch     uint32
	linkMark  []uint32
	capacity  []float64
	unfrozen  []int32
	compFlows []*Flow
	compLinks []topology.LinkID
	queue     []topology.LinkID
}

// New returns a Network simulating transfers over g, driven by k.
func New(k *sim.Kernel, g *topology.Graph) *Network {
	links := len(g.Links)
	return &Network{
		k:         k,
		g:         g,
		stats:     Stats{LinkBytes: make(map[topology.LinkID]float64)},
		linkFlows: make([][]*Flow, links),
		linkMark:  make([]uint32, links),
		capacity:  make([]float64, links),
		unfrozen:  make([]int32, links),
	}
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	cp := n.stats
	cp.LinkBytes = make(map[topology.LinkID]float64, len(n.stats.LinkBytes))
	for k, v := range n.stats.LinkBytes {
		cp.LinkBytes[k] = v
	}
	return cp
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// Transfer moves bytes from src to dst, blocking the calling process for the
// route propagation latency plus the congestion-dependent transfer time.
// A zero-byte transfer still pays the route latency (a request round-trip).
func (n *Network) Transfer(p *sim.Proc, src, dst topology.NodeID, bytes float64) error {
	route, err := n.g.RouteBetween(src, dst)
	if err != nil {
		return err
	}
	if route.Latency > 0 {
		p.Sleep(route.Latency)
	}
	if bytes <= 0 {
		return nil
	}
	f, err := n.StartFlow(src, dst, bytes)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	return nil
}

// StartFlow begins a transfer and returns the flow; f.done fires on
// completion. Most callers want Transfer instead.
func (n *Network) StartFlow(src, dst topology.NodeID, bytes float64) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("netsim: non-positive flow size %v", bytes)
	}
	route, err := n.g.RouteBetween(src, dst)
	if err != nil {
		return nil, err
	}
	if len(route.Links) == 0 {
		return nil, fmt.Errorf("netsim: src %d and dst %d are the same node", src, dst)
	}
	n.seq++
	f := &Flow{
		ID:        n.seq,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		remaining: bytes,
		route:     route.Links,
		done:      sim.NewSignal(n.k),
		started:   n.k.Now(),
		updated:   n.k.Now(),
	}
	n.active = append(n.active, f) // IDs are monotonic: stays sorted
	for _, lid := range f.route {
		n.linkFlows[lid] = append(n.linkFlows[lid], f)
	}
	n.stats.FlowsStarted++
	n.rerate(f.route)
	return f, nil
}

// rerate recomputes the max-min fair rates of every flow in the connected
// component(s) of the given changed links and reschedules the completion
// events of flows whose rate changed. Called on each flow arrival and
// departure with the arriving/departing flow's route.
//
// Determinism: all order-sensitive arithmetic iterates flow-ID- and
// link-ID-sorted slices, never maps — max-min allocation is unique, but
// floating-point accumulation order is not, and an order-dependent rounding
// difference would break deterministic replay. The per-link flow registry
// is deliberately unordered: within one filling round every frozen flow
// subtracts the same share from a link, so the subtraction order cannot
// change the result, and the bottleneck scan and progress charging — which
// are order-sensitive — run over the sorted component slices.
func (n *Network) rerate(changed []topology.LinkID) {
	now := n.k.Now()

	// Collect the component(s) of the changed links over the flow↔link
	// bipartite graph.
	n.epoch++
	e := n.epoch
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]
	n.queue = n.queue[:0]
	for _, lid := range changed {
		if n.linkMark[lid] != e {
			n.linkMark[lid] = e
			n.queue = append(n.queue, lid)
			n.compLinks = append(n.compLinks, lid)
		}
	}
	for qi := 0; qi < len(n.queue); qi++ {
		lid := n.queue[qi]
		for _, f := range n.linkFlows[lid] {
			if f.mark == e {
				continue
			}
			f.mark = e
			n.compFlows = append(n.compFlows, f)
			for _, l2 := range f.route {
				if n.linkMark[l2] != e {
					n.linkMark[l2] = e
					n.queue = append(n.queue, l2)
					n.compLinks = append(n.compLinks, l2)
				}
			}
		}
	}
	if len(n.compFlows) == 0 {
		return // the departing flow was alone on its links
	}
	// Components are small (tens of flows/links); insertion sort beats the
	// generic sort's overhead here and allocates nothing.
	for i := 1; i < len(n.compFlows); i++ {
		for j := i; j > 0 && n.compFlows[j].ID < n.compFlows[j-1].ID; j-- {
			n.compFlows[j], n.compFlows[j-1] = n.compFlows[j-1], n.compFlows[j]
		}
	}
	for i := 1; i < len(n.compLinks); i++ {
		for j := i; j > 0 && n.compLinks[j] < n.compLinks[j-1]; j-- {
			n.compLinks[j], n.compLinks[j-1] = n.compLinks[j-1], n.compLinks[j]
		}
	}

	// 1. Charge progress since each flow's last settlement.
	for _, f := range n.compFlows {
		f.remaining -= f.rate * (now - f.updated)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.updated = now
		f.frozen = false
		f.prevRate = f.rate
	}

	// 2. Progressive filling over the component. Every flow registered on
	// a component link is in the component by construction, so the
	// unfrozen counters can start from the registry sizes.
	for _, lid := range n.compLinks {
		n.capacity[lid] = n.g.Links[lid].Bandwidth
		n.unfrozen[lid] = int32(len(n.linkFlows[lid]))
	}
	left := len(n.compFlows)
	for left > 0 {
		// Find the bottleneck: the link with the smallest fair share among
		// links that still carry unfrozen flows. Ties resolve to the lowest
		// link id (same allocation either way; the tie-break keeps the
		// floating-point accumulation order reproducible).
		bottleneck := topology.LinkID(-1)
		share := math.MaxFloat64
		for _, lid := range n.compLinks {
			cnt := n.unfrozen[lid]
			if cnt == 0 {
				continue
			}
			if s := n.capacity[lid] / float64(cnt); s < share {
				share = s
				bottleneck = lid
			}
		}
		if bottleneck < 0 {
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the fair
		// share and charge its rate against the rest of its route.
		for _, f := range n.linkFlows[bottleneck] {
			if f.frozen {
				continue
			}
			f.frozen = true
			f.rate = share
			left--
			for _, lid := range f.route {
				n.capacity[lid] -= share
				if n.capacity[lid] < 0 {
					n.capacity[lid] = 0
				}
				n.unfrozen[lid]--
			}
		}
	}

	// 3. Reschedule completions — only where the rate actually changed.
	// An unchanged rate means the previously scheduled completion time
	// still lies on the flow's (linear) remaining-bytes trajectory.
	//
	// Tie semantics: two flows completing at the exact same virtual time
	// fire in event-scheduling order, so a flow that kept an older event
	// fires before one rescheduled later regardless of flow ID. The
	// pre-scoping implementation rescheduled every flow on every re-rate,
	// which resolved such ties in flow-ID order instead. Either order is
	// fully deterministic under replay; only the (measure-zero) exact-tie
	// interleaving relative to the old implementation differs.
	for _, f := range n.compFlows {
		if f.rate == f.prevRate && f.completed != nil {
			continue
		}
		if f.completed != nil {
			n.k.Unschedule(f.completed)
			f.completed = nil
		}
		if f.rate <= 0 {
			// No capacity at all (should not happen with positive link
			// capacities); leave the flow stalled until the next re-rate.
			continue
		}
		eta := f.remaining / f.rate
		if f.remaining <= completionSlack {
			eta = 0
		}
		ff := f
		f.completed = n.k.Schedule(eta, func() { n.finish(ff) })
	}
}

func (n *Network) finish(f *Flow) {
	i := sort.Search(len(n.active), func(i int) bool { return n.active[i].ID >= f.ID })
	n.active = append(n.active[:i], n.active[i+1:]...)
	for _, lid := range f.route {
		lf := n.linkFlows[lid]
		for j, ff := range lf {
			if ff == f {
				last := len(lf) - 1
				lf[j] = lf[last]
				lf[last] = nil
				n.linkFlows[lid] = lf[:last]
				break
			}
		}
	}
	f.completed = nil
	f.remaining = 0
	f.rate = 0
	n.stats.FlowsCompleted++
	n.stats.BytesDelivered += f.Bytes
	for _, lid := range f.route {
		n.stats.LinkBytes[lid] += f.Bytes
	}
	n.rerate(f.route)
	f.done.Fire(f)
}
