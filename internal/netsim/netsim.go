// Package netsim simulates wide-area data transfers at flow level.
//
// Concurrent flows share link capacity max-min fairly (progressive
// filling), the bandwidth-sharing model SimGrid uses for TCP-like flows.
// Whenever a flow starts or finishes, every active flow's rate is
// recomputed and its completion event rescheduled, so contention between
// sites transferring through shared WAN links is modeled continuously.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"gridsched/internal/sim"
	"gridsched/internal/topology"
)

// completionSlack guards against floating-point drift when rescheduling
// completion events: a flow whose remaining bytes fall below this many
// bytes is considered finished.
const completionSlack = 1e-6

// Flow is an active transfer between two nodes.
type Flow struct {
	ID        int
	Src, Dst  topology.NodeID
	Bytes     float64 // total payload
	remaining float64
	rate      float64 // current allocation, bytes/s
	route     []topology.LinkID
	completed *sim.Event
	done      *sim.Signal
	started   sim.Time
	updated   sim.Time // last time remaining was settled

	// progressive-filling scratch state
	frozen bool
}

// Rate returns the flow's current max-min fair allocation in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet delivered as of the last re-rate.
func (f *Flow) Remaining() float64 { return f.remaining }

// Stats aggregates network activity over a run.
type Stats struct {
	FlowsStarted   int
	FlowsCompleted int
	BytesDelivered float64
	// LinkBytes accumulates payload bytes carried per link (a flow's bytes
	// count once on every link of its route).
	LinkBytes map[topology.LinkID]float64
}

// Network is the flow-level simulator bound to a kernel and a graph.
type Network struct {
	k     *sim.Kernel
	g     *topology.Graph
	flows map[int]*Flow
	seq   int
	stats Stats
}

// New returns a Network simulating transfers over g, driven by k.
func New(k *sim.Kernel, g *topology.Graph) *Network {
	return &Network{
		k:     k,
		g:     g,
		flows: make(map[int]*Flow),
		stats: Stats{LinkBytes: make(map[topology.LinkID]float64)},
	}
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	cp := n.stats
	cp.LinkBytes = make(map[topology.LinkID]float64, len(n.stats.LinkBytes))
	for k, v := range n.stats.LinkBytes {
		cp.LinkBytes[k] = v
	}
	return cp
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Transfer moves bytes from src to dst, blocking the calling process for the
// route propagation latency plus the congestion-dependent transfer time.
// A zero-byte transfer still pays the route latency (a request round-trip).
func (n *Network) Transfer(p *sim.Proc, src, dst topology.NodeID, bytes float64) error {
	route, err := n.g.RouteBetween(src, dst)
	if err != nil {
		return err
	}
	if route.Latency > 0 {
		p.Sleep(route.Latency)
	}
	if bytes <= 0 {
		return nil
	}
	f, err := n.StartFlow(src, dst, bytes)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	return nil
}

// StartFlow begins a transfer and returns the flow; f.done fires on
// completion. Most callers want Transfer instead.
func (n *Network) StartFlow(src, dst topology.NodeID, bytes float64) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("netsim: non-positive flow size %v", bytes)
	}
	route, err := n.g.RouteBetween(src, dst)
	if err != nil {
		return nil, err
	}
	if len(route.Links) == 0 {
		return nil, fmt.Errorf("netsim: src %d and dst %d are the same node", src, dst)
	}
	n.seq++
	f := &Flow{
		ID:        n.seq,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		remaining: bytes,
		route:     route.Links,
		done:      sim.NewSignal(n.k),
		started:   n.k.Now(),
		updated:   n.k.Now(),
	}
	n.flows[f.ID] = f
	n.stats.FlowsStarted++
	n.rerate()
	return f, nil
}

// rerate recomputes every active flow's max-min fair rate and reschedules
// completion events. Called on each flow arrival and departure.
//
// All iteration is over flow-ID- and link-ID-sorted slices, never directly
// over maps: max-min allocation is unique, but floating-point accumulation
// order is not, and a map-order-dependent rounding difference would break
// deterministic replay.
func (n *Network) rerate() {
	now := n.k.Now()

	active := make([]*Flow, 0, len(n.flows))
	for _, f := range n.flows {
		active = append(active, f)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })

	// 1. Charge progress since the last re-rate.
	for _, f := range active {
		f.remaining -= f.rate * (now - f.updated)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.updated = now
	}

	// 2. Progressive filling over the links used by active flows.
	type linkState struct {
		id       topology.LinkID
		capacity float64
		flows    []*Flow
	}
	byLink := make(map[topology.LinkID]*linkState)
	var links []*linkState
	for _, f := range active {
		f.frozen = false
		for _, lid := range f.route {
			ls, ok := byLink[lid]
			if !ok {
				ls = &linkState{id: lid, capacity: n.g.Links[lid].Bandwidth}
				byLink[lid] = ls
				links = append(links, ls)
			}
			ls.flows = append(ls.flows, f)
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i].id < links[j].id })

	unfrozen := len(active)
	for unfrozen > 0 {
		// Find the bottleneck: the link with the smallest fair share among
		// links that still carry unfrozen flows. Ties resolve to the lowest
		// link id (same allocation either way; the tie-break keeps the
		// floating-point accumulation order reproducible).
		var bottleneck *linkState
		share := math.MaxFloat64
		for _, ls := range links {
			cnt := 0
			for _, f := range ls.flows {
				if !f.frozen {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			if s := ls.capacity / float64(cnt); s < share {
				share = s
				bottleneck = ls
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow through the bottleneck at the fair
		// share and charge its rate against the rest of its route.
		for _, f := range bottleneck.flows {
			if f.frozen {
				continue
			}
			f.frozen = true
			f.rate = share
			unfrozen--
			for _, lid := range f.route {
				ls := byLink[lid]
				ls.capacity -= share
				if ls.capacity < 0 {
					ls.capacity = 0
				}
			}
		}
	}

	// 3. Reschedule completions.
	for _, f := range active {
		if f.completed != nil {
			f.completed.Cancel()
			f.completed = nil
		}
		if f.rate <= 0 {
			// No capacity at all (should not happen with positive link
			// capacities); leave the flow stalled until the next re-rate.
			continue
		}
		eta := f.remaining / f.rate
		if f.remaining <= completionSlack {
			eta = 0
		}
		ff := f
		f.completed = n.k.Schedule(eta, func() { n.finish(ff) })
	}
}

func (n *Network) finish(f *Flow) {
	delete(n.flows, f.ID)
	f.remaining = 0
	f.rate = 0
	n.stats.FlowsCompleted++
	n.stats.BytesDelivered += f.Bytes
	for _, lid := range f.route {
		n.stats.LinkBytes[lid] += f.Bytes
	}
	n.rerate()
	f.done.Fire(f)
}
