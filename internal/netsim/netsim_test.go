package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridsched/internal/sim"
	"gridsched/internal/topology"
)

// line builds a graph a -[cap,lat]- b and returns (graph, a, b).
func line(capacity, latency float64) (*topology.Graph, topology.NodeID, topology.NodeID) {
	g := topology.NewGraph()
	a := g.AddNode(topology.KindSite, "a")
	b := g.AddNode(topology.KindFileServer, "b")
	g.AddLink(a, b, capacity, latency)
	return g, a, b
}

func almost(a, b float64) bool {
	return math.Abs(a-b) < 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestSingleFlowTransferTime(t *testing.T) {
	g, a, b := line(100, 0.5) // 100 B/s, 0.5 s latency
	k := sim.NewKernel()
	n := New(k, g)
	var end sim.Time
	k.Go("xfer", func(p *sim.Proc) {
		if err := n.Transfer(p, a, b, 1000); err != nil {
			t.Errorf("transfer: %v", err)
		}
		end = p.Now()
	})
	k.Run()
	if !almost(end, 10.5) { // 0.5 latency + 1000/100
		t.Fatalf("end = %v, want 10.5", end)
	}
	st := n.Stats()
	if st.FlowsCompleted != 1 || !almost(st.BytesDelivered, 1000) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroByteTransferPaysOnlyLatency(t *testing.T) {
	g, a, b := line(100, 0.25)
	k := sim.NewKernel()
	n := New(k, g)
	var end sim.Time
	k.Go("xfer", func(p *sim.Proc) {
		if err := n.Transfer(p, a, b, 0); err != nil {
			t.Errorf("transfer: %v", err)
		}
		end = p.Now()
	})
	k.Run()
	if !almost(end, 0.25) {
		t.Fatalf("end = %v, want 0.25", end)
	}
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	g, a, b := line(100, 0)
	k := sim.NewKernel()
	n := New(k, g)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.Go("xfer", func(p *sim.Proc) {
			if err := n.Transfer(p, a, b, 1000); err != nil {
				t.Errorf("transfer: %v", err)
			}
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	// Each flow gets 50 B/s while both are active; both finish at t=20.
	if len(ends) != 2 || !almost(ends[0], 20) || !almost(ends[1], 20) {
		t.Fatalf("ends = %v, want [20 20]", ends)
	}
}

func TestLateFlowRerates(t *testing.T) {
	g, a, b := line(100, 0)
	k := sim.NewKernel()
	n := New(k, g)
	var endA, endB sim.Time
	k.Go("first", func(p *sim.Proc) {
		if err := n.Transfer(p, a, b, 1000); err != nil {
			t.Errorf("transfer: %v", err)
		}
		endA = p.Now()
	})
	k.Go("second", func(p *sim.Proc) {
		p.Sleep(5)
		if err := n.Transfer(p, a, b, 250); err != nil {
			t.Errorf("transfer: %v", err)
		}
		endB = p.Now()
	})
	k.Run()
	// First flow: 5 s at 100 B/s (500 B), then shares at 50 B/s.
	// Second flow: 250 B at 50 B/s, done at t=10; first then finishes the
	// remaining 250 B at 100 B/s, done at t=12.5.
	if !almost(endB, 10) {
		t.Fatalf("endB = %v, want 10", endB)
	}
	if !almost(endA, 12.5) {
		t.Fatalf("endA = %v, want 12.5", endA)
	}
}

// TestMaxMinClassic checks the textbook 2-link example: flow X crosses both
// links, flow Y only link 1, flow Z only link 2. With caps c1=100, c2=200:
// X and Y share link 1 at 50 each; Z gets the rest of link 2 (150).
func TestMaxMinClassic(t *testing.T) {
	g := topology.NewGraph()
	n0 := g.AddNode(topology.KindSite, "n0")
	n1 := g.AddNode(topology.KindWAN, "n1")
	n2 := g.AddNode(topology.KindFileServer, "n2")
	g.AddLink(n0, n1, 100, 0)
	g.AddLink(n1, n2, 200, 0)

	k := sim.NewKernel()
	nw := New(k, g)

	var x, y, z *Flow
	k.Schedule(0, func() {
		var err error
		if x, err = nw.StartFlow(n0, n2, 1e9); err != nil {
			t.Errorf("x: %v", err)
		}
		if y, err = nw.StartFlow(n0, n1, 1e9); err != nil {
			t.Errorf("y: %v", err)
		}
		if z, err = nw.StartFlow(n1, n2, 1e9); err != nil {
			t.Errorf("z: %v", err)
		}
	})
	k.RunUntil(1) // let the start event fire; flows far from done
	if !almost(x.Rate(), 50) || !almost(y.Rate(), 50) || !almost(z.Rate(), 150) {
		t.Fatalf("rates = %v %v %v, want 50 50 150", x.Rate(), y.Rate(), z.Rate())
	}
}

func TestStartFlowErrors(t *testing.T) {
	g, a, b := line(100, 0)
	k := sim.NewKernel()
	n := New(k, g)
	if _, err := n.StartFlow(a, b, 0); err == nil {
		t.Fatal("accepted zero-byte flow")
	}
	if _, err := n.StartFlow(a, a, 10); err == nil {
		t.Fatal("accepted self flow")
	}
	c := g.AddNode(topology.KindSite, "c") // disconnected
	if _, err := n.StartFlow(a, c, 10); err == nil {
		t.Fatal("accepted unreachable flow")
	}
}

// Property: random staggered flows over a random tiers topology all
// complete, deliver their exact payload, and per-link capacity is never
// exceeded at re-rate points.
func TestRandomFlowsConservation(t *testing.T) {
	f := func(seed int64) bool {
		topo, err := topology.GenerateTiers(topology.DefaultTiersConfig(seed))
		if err != nil {
			return false
		}
		k := sim.NewKernel()
		n := New(k, topo.Graph)
		rng := rand.New(rand.NewSource(seed))
		const flows = 25
		completed := 0
		var totalBytes float64
		for i := 0; i < flows; i++ {
			src := topo.Sites[rng.Intn(len(topo.Sites))]
			bytes := 1e5 + rng.Float64()*1e7
			start := rng.Float64() * 30
			totalBytes += bytes
			k.Schedule(start, func() {
				fl, err := n.StartFlow(src, topo.FileServer, bytes)
				if err != nil {
					t.Errorf("start: %v", err)
					return
				}
				_ = fl
			})
		}
		k.Schedule(0, func() {}) // ensure kernel has work even if flows=0
		k.Run()
		completed = n.Stats().FlowsCompleted
		if completed != flows {
			t.Errorf("completed %d of %d flows", completed, flows)
			return false
		}
		if !almost(n.Stats().BytesDelivered, totalBytes) {
			t.Errorf("delivered %v, want %v", n.Stats().BytesDelivered, totalBytes)
			return false
		}
		if n.ActiveFlows() != 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Capacity invariant: at any re-rate, the sum of flow rates over a link
// must not exceed its capacity (within floating-point tolerance).
func TestLinkCapacityRespected(t *testing.T) {
	topo, err := topology.GenerateTiers(topology.DefaultTiersConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	n := New(k, topo.Graph)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		src := topo.Sites[rng.Intn(len(topo.Sites))]
		bytes := 1e6 + rng.Float64()*1e8
		k.Schedule(rng.Float64()*10, func() {
			if _, err := n.StartFlow(src, topo.FileServer, bytes); err != nil {
				t.Errorf("start: %v", err)
			}
		})
	}
	// Sample link loads at regular intervals.
	for step := 1; step <= 100; step++ {
		k.Schedule(float64(step), func() {
			load := make(map[topology.LinkID]float64)
			for _, f := range n.active {
				for _, lid := range f.route {
					load[lid] += f.rate
				}
			}
			for lid, l := range load {
				cap := topo.Graph.Links[lid].Bandwidth
				if l > cap*(1+1e-9) {
					t.Errorf("link %d overloaded: %v > %v", lid, l, cap)
				}
			}
		})
	}
	k.Run()
}

func TestNetworkDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		topo, err := topology.GenerateTiers(topology.DefaultTiersConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		n := New(k, topo.Graph)
		rng := rand.New(rand.NewSource(17))
		var ends []sim.Time
		for i := 0; i < 30; i++ {
			src := topo.Sites[rng.Intn(len(topo.Sites))]
			bytes := 1e6 + rng.Float64()*1e7
			k.Schedule(rng.Float64()*5, func() {
				f, err := n.StartFlow(src, topo.FileServer, bytes)
				if err != nil {
					t.Errorf("start: %v", err)
					return
				}
				k.Go("wait", func(p *sim.Proc) {
					f.done.Wait(p)
					ends = append(ends, p.Now())
				})
			})
		}
		k.Run()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 30 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
