package middleware

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/metrics"
)

// LoadShedConfig parameterizes latency-based load shedding.
type LoadShedConfig struct {
	// P99 is the bound: when the 99th percentile of recent request
	// latencies exceeds it, the shedder starts rejecting sheddable
	// requests (pulls and submits) with 429 + Retry-After. Must be > 0 to
	// install the middleware.
	P99 time.Duration
	// Window is the latency sample window size (metrics.LatencyWindow).
	// 0 picks 1024.
	Window int
	// MinSamples is how many samples must be resident before the shedder
	// trusts a p99. 0 picks 64.
	MinSamples int
	// EvalEvery is the evaluation cadence: p99 is recomputed and the shed
	// level adjusted at most this often, one step per tick. 0 picks 250ms.
	EvalEvery time.Duration
	// RetryAfter is the Retry-After hint on shed responses. 0 picks 1s.
	RetryAfter time.Duration
	// TenantWeight resolves an authenticated tenant's fair-share weight
	// (internal/service.Service.TenantWeight); it decides WHO sheds
	// first. Nil, or an unauthenticated request, counts as weight 1;
	// results < 0 clamp to 0 (shed first).
	TenantWeight func(tenant string) int64
	// Now is the clock (tests); nil is time.Now.
	Now func() time.Time
}

func (c *LoadShedConfig) normalize() {
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// weightStale is how long a weight class stays in the shed ladder after
// its last request; stale classes fall off so departed tenants do not
// distort the ordering.
const weightStale = time.Minute

// shedder holds the escalation state. The discipline is a deterministic
// ladder over the weight classes of recent traffic, so "low-weight
// tenants shed first, paying tenants last" is an ordering guarantee, not
// a probability:
//
//   - Every EvalEvery, p99 over the sample window is recomputed. Above
//     the bound (with enough samples): the level climbs one step. At or
//     below it — or when no fresh samples arrived, i.e. everything is
//     being shed — the level decays one step.
//   - At level L, the bar is the L-th smallest distinct weight among
//     recently seen classes; sheddable requests from tenants with weight
//     ≤ bar are rejected. Level 1 sheds only the lightest class; the
//     heaviest class sheds only at the top of the ladder, and the decay
//     tick readmits it first.
type shedder struct {
	cfg LoadShedConfig
	c   *metrics.IngressCounters
	win *metrics.LatencyWindow

	mu        sync.RWMutex
	lastEval  time.Time
	lastTotal int64
	level     int
	bar       int64 // shed sheddable requests with weight ≤ bar; 0 = none
	weights   map[int64]time.Time
}

// weightOf resolves the request's shed weight from its authenticated
// tenant.
func (s *shedder) weightOf(r *http.Request) (weight int64, tenant string) {
	weight = 1
	if p, ok := PrincipalFrom(r.Context()); ok {
		tenant = p.Tenant
		weight = resolveWeight(r.Context(), s.cfg.TenantWeight, tenant)
		if weight < 0 {
			weight = 0
		}
	}
	return weight, tenant
}

// evaluate adjusts the shed level at the configured cadence and returns
// the current admit bar. now flows in from the caller so tests can drive
// a fake clock. The fast path — no eval due, weight class recently
// recorded — takes only the read lock; the weight-seen timestamp is
// refreshed lazily (at most every weightStale/2 per class), which keeps
// the staleness check exact enough while sparing the hot path the
// exclusive lock and map write.
func (s *shedder) evaluate(now time.Time, weight int64) int64 {
	s.mu.RLock()
	seen, known := s.weights[weight]
	due := now.Sub(s.lastEval) >= s.cfg.EvalEvery
	bar := s.bar
	s.mu.RUnlock()
	if !due && known && now.Sub(seen) < weightStale/2 {
		return bar
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.weights[weight] = now
	if now.Sub(s.lastEval) < s.cfg.EvalEvery {
		return s.bar
	}
	s.lastEval = now
	total := s.win.Total()
	fresh := total > s.lastTotal
	s.lastTotal = total
	p99 := s.win.Percentile(0.99)
	s.c.RequestP99Nanos.Store(int64(p99))
	switch {
	case fresh && s.win.Samples() >= s.cfg.MinSamples && p99 > s.cfg.P99:
		s.level++
	case s.level > 0:
		s.level--
	}
	// Recompute the ladder from the weight classes still current.
	ladder := make([]int64, 0, len(s.weights))
	for w, seen := range s.weights {
		if now.Sub(seen) > weightStale {
			delete(s.weights, w)
			continue
		}
		ladder = append(ladder, w)
	}
	sort.Slice(ladder, func(i, j int) bool { return ladder[i] < ladder[j] })
	if s.level > len(ladder) {
		s.level = len(ladder)
	}
	if s.level == 0 || len(ladder) == 0 {
		s.bar = 0
	} else {
		s.bar = ladder[s.level-1]
	}
	s.c.ShedLevel.Store(int64(s.level))
	return s.bar
}

// ObserveParked records time a handler spent deliberately parked waiting
// for work — the long-poll portion of a pull — so the shedder can
// subtract it from the request's observed latency. Without this, an idle
// worker's empty pull (parked server-side for the full poll budget,
// client default 2s) would be sampled as a ~2s latency, breach any
// realistic p99 bound, and shed a completely unloaded system.
// internal/service reports each pull's accumulated park through here.
// Outside a chain that tracks parked time it is a no-op.
func ObserveParked(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if st, _ := ctx.Value(reqStateKey).(*reqState); st != nil {
		st.parked.Add(int64(d))
		return
	}
	if pk, _ := ctx.Value(parkedKey).(*atomic.Int64); pk != nil {
		pk.Add(int64(d))
	}
}

// parkedCounter returns the request's parked-time accumulator, reusing
// the Logging request state when present (the production chain: zero
// extra allocation) and otherwise installing a dedicated counter so a
// standalone LoadShed still excludes long-poll waits.
func parkedCounter(r *http.Request) (*atomic.Int64, *http.Request) {
	ctx := r.Context()
	if st, _ := ctx.Value(reqStateKey).(*reqState); st != nil {
		return &st.parked, r
	}
	if pk, _ := ctx.Value(parkedKey).(*atomic.Int64); pk != nil {
		return pk, r
	}
	pk := new(atomic.Int64)
	return pk, r.WithContext(context.WithValue(ctx, parkedKey, pk))
}

// sheddable reports whether the request may be shed: new work entering
// the system — job submissions and worker pulls. Reports and heartbeats
// always pass: they RETIRE in-flight work, and shedding them would deepen
// the very overload being shed.
func sheddable(r *http.Request) bool {
	switch r.Method {
	case http.MethodPost:
		return r.URL.Path == "/v1/jobs" ||
			(strings.HasPrefix(r.URL.Path, "/v1/workers/") && strings.HasSuffix(r.URL.Path, "/pull"))
	case http.MethodGet:
		// Opening a lease stream admits new work exactly like a pull;
		// batched reports (POST .../reports) retire work and always pass.
		return strings.HasPrefix(r.URL.Path, "/v1/workers/") && strings.HasSuffix(r.URL.Path, "/stream")
	}
	return false
}

// LoadShed is the admission-control middleware: it samples every
// non-exempt request's latency into a bounded window and, when the p99
// breaches cfg.P99, sheds pulls and submits with 429 + Retry-After —
// lightest weight classes first (see shedder). Time a handler reports as
// deliberately parked (ObserveParked: long-poll pull waits) is excluded
// from the sample, so idle workers polling an empty queue do not read as
// multi-second latencies. Shed responses are not sampled, so a fully
// shed system goes quiet, the window stales, and the decay tick readmits
// traffic — heaviest tenants first.
func LoadShed(cfg LoadShedConfig, c *metrics.IngressCounters) Middleware {
	cfg.normalize()
	s := &shedder{
		cfg:     cfg,
		c:       c,
		win:     metrics.NewLatencyWindow(cfg.Window),
		weights: make(map[int64]time.Time),
	}
	retrySecs := strconv.FormatInt(int64((cfg.RetryAfter+time.Second-1)/time.Second), 10)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if Exempt(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			now := s.cfg.Now()
			weight, tenant := s.weightOf(r)
			bar := s.evaluate(now, weight)
			if bar > 0 && weight <= bar && sheddable(r) {
				s.c.ObserveShed(tenant)
				Logf(r.Context(), "shed=true tenant=%q weight=%d bar=%d", tenant, weight, bar)
				w.Header().Set("Retry-After", retrySecs)
				writeJSONError(w, http.StatusTooManyRequests, "overloaded; shed, retry later")
				return
			}
			pk, r := parkedCounter(r)
			next.ServeHTTP(w, r)
			if lat := s.cfg.Now().Sub(now) - time.Duration(pk.Load()); lat > 0 {
				s.win.Observe(lat)
			} else {
				s.win.Observe(0)
			}
		})
	}
}
