package middleware

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"

	"gridsched/internal/metrics"
)

// Principal is an authenticated caller: the tenant its bearer token maps
// to, and whether the token carries admin privileges (required for admin
// endpoints, and for submitting jobs on behalf of other tenants).
type Principal struct {
	Tenant string
	Admin  bool
}

// TokenStore maps bearer tokens to principals, loaded from a token file
// and hot-reloadable (gridschedd reloads on SIGHUP). The file is
// journal-free operator state: lines of
//
//	<token> <tenant> [admin]
//
// with '#' comments and blank lines ignored. <tenant> is the tenant the
// token authenticates as; "-" names the default (anonymous) tenant. A
// trailing "admin" grants admin privileges.
type TokenStore struct {
	path string

	mu     sync.RWMutex
	tokens map[string]Principal
}

// LoadTokenFile reads path and returns a store that Reload() re-reads
// from the same path.
func LoadTokenFile(path string) (*TokenStore, error) {
	s := &TokenStore{path: path}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewTokenStore wraps an in-memory token table (tests, embedders).
// Reload is a no-op for such a store.
func NewTokenStore(tokens map[string]Principal) *TokenStore {
	cp := make(map[string]Principal, len(tokens))
	for k, v := range tokens {
		cp[k] = v
	}
	return &TokenStore{tokens: cp}
}

// Reload re-reads the token file. On any error — unreadable file, parse
// failure — the previously loaded table stays in effect, so a botched
// edit plus SIGHUP cannot lock every client out.
func (s *TokenStore) Reload() error {
	if s.path == "" {
		return nil
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("middleware: token file: %w", err)
	}
	tokens, err := parseTokens(data)
	if err != nil {
		return fmt.Errorf("middleware: token file %s: %w", s.path, err)
	}
	s.mu.Lock()
	s.tokens = tokens
	s.mu.Unlock()
	return nil
}

// Len reports the number of loaded tokens.
func (s *TokenStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tokens)
}

func (s *TokenStore) lookup(token string) (Principal, bool) {
	s.mu.RLock()
	p, ok := s.tokens[token]
	s.mu.RUnlock()
	return p, ok
}

func parseTokens(data []byte) (map[string]Principal, error) {
	tokens := make(map[string]Principal)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want \"<token> <tenant> [admin]\", got %d fields", n, len(fields))
		}
		p := Principal{Tenant: fields[1]}
		if p.Tenant == "-" {
			p.Tenant = ""
		}
		if len(fields) == 3 {
			if fields[2] != "admin" {
				return nil, fmt.Errorf("line %d: unknown flag %q (only \"admin\")", n, fields[2])
			}
			p.Admin = true
		}
		if _, dup := tokens[fields[0]]; dup {
			return nil, fmt.Errorf("line %d: duplicate token", n)
		}
		tokens[fields[0]] = p
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tokens, nil
}

// adminEndpoint reports whether the request mutates cross-tenant state
// and therefore requires an admin token: quota overrides (PUT
// /v1/tenants/{tenant}) and the whole replication surface (streaming the
// journal exposes every tenant's records; promotion changes who leads).
func adminEndpoint(r *http.Request) bool {
	if strings.HasPrefix(r.URL.Path, "/v1/replication/") {
		return true
	}
	return r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/tenants/")
}

// Auth enforces per-tenant bearer-token authentication on every
// non-exempt endpoint: no or unknown token is a 401, a valid token
// without admin privileges hitting an admin endpoint is a 403. The
// authenticated principal rides the request context (PrincipalFrom);
// internal/service uses it to bind submissions to the token's tenant.
func Auth(store *TokenStore, c *metrics.IngressCounters) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if Exempt(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			token, ok := bearerToken(r)
			var p Principal
			if ok {
				p, ok = store.lookup(token)
			}
			if !ok {
				c.AuthFailures.Add(1)
				Logf(r.Context(), "auth=rejected reason=\"missing or unknown bearer token\"")
				w.Header().Set("WWW-Authenticate", `Bearer realm="gridsched"`)
				writeJSONError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			if adminEndpoint(r) && !p.Admin {
				c.AuthDenied.Add(1)
				Logf(r.Context(), "auth=denied tenant=%q reason=\"admin endpoint\"", p.Tenant)
				writeJSONError(w, http.StatusForbidden, "admin token required")
				return
			}
			// Inside a Logging request WithPrincipal stores into the shared
			// request state and returns the same context, so the request
			// clone (and its allocation) is skipped on the hot path.
			if ctx := WithPrincipal(r.Context(), p); ctx != r.Context() {
				r = r.WithContext(ctx)
			}
			next.ServeHTTP(w, r)
		})
	}
}

func bearerToken(r *http.Request) (string, bool) {
	// "Authorization" is canonical; direct indexing skips Get's
	// canonicalization scan on every authenticated request.
	var h string
	if vv := r.Header["Authorization"]; len(vv) > 0 {
		h = vv[0]
	}
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// WithPrincipal attaches an authenticated principal to ctx. Inside a
// Logging request it reuses the request state (no allocation); otherwise
// it falls back to a plain context value, which is what lets tests and
// embedders seed principals without the full chain.
func WithPrincipal(ctx context.Context, p Principal) context.Context {
	if st, _ := ctx.Value(reqStateKey).(*reqState); st != nil {
		st.principal, st.hasPrincipal = p, true
		return ctx
	}
	return context.WithValue(ctx, principalKey, p)
}

// PrincipalFrom returns the request's authenticated principal, if any.
func PrincipalFrom(ctx context.Context) (Principal, bool) {
	if st, _ := ctx.Value(reqStateKey).(*reqState); st != nil && st.hasPrincipal {
		return st.principal, true
	}
	p, ok := ctx.Value(principalKey).(Principal)
	return p, ok
}

// resolveWeight resolves an authenticated tenant's fair-share weight at
// most once per request: the first caller in the chain (rate limiter or
// shedder) pays the resolver's cost — typically a scheduler lock — and
// the raw result is cached in the request state for the rest of the
// chain. Callers apply their own clamping. A nil resolver is weight 1.
func resolveWeight(ctx context.Context, resolve func(string) int64, tenant string) int64 {
	if resolve == nil {
		return 1
	}
	st, _ := ctx.Value(reqStateKey).(*reqState)
	if st != nil && st.hasWeight {
		return st.weight
	}
	w := resolve(tenant)
	if st != nil {
		st.weight, st.hasWeight = w, true
	}
	return w
}
