package middleware

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the request trace ID on both requests (clients may
// supply one to correlate across systems) and responses (the server echoes
// or generates one).
const TraceHeader = "X-Trace-Id"

// maxTraceID bounds accepted client-supplied trace IDs; longer ones are
// replaced rather than propagated into logs and headers.
const maxTraceID = 64

// validTraceID reports whether a client-supplied trace ID is safe to
// adopt: bounded length, drawn entirely from [A-Za-z0-9_.-]. Anything
// else — newlines, spaces, '=' — could split or forge entries in the
// flushed log (the lines interpolate the ID verbatim), so such IDs are
// replaced, not propagated.
func validTraceID(s string) bool {
	if s == "" || len(s) > maxTraceID {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// traceNonce distinguishes processes; trace IDs are nonce + a process
// sequence number, which is unique enough for correlation and far cheaper
// than per-request crypto randomness on the happy path.
var (
	traceNonce = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("middleware: trace nonce: %v", err))
		}
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
)

func newTraceID() string {
	var b [32]byte
	n := copy(b[:], traceNonce)
	b[n] = '-'
	return string(strconv.AppendUint(b[:n+1], traceSeq.Add(1), 16))
}

type ctxKey int

const (
	reqStateKey ctxKey = iota
	principalKey
	parkedKey
)

// reqState is the per-request scratch the chain shares through the
// context: the trace ID, the status-recording response writer, the
// buffered log lines, the authenticated principal, and the resolved
// tenant weight. Folding all of it into one struct keeps the chain's
// hot path to a single allocation plus the context it rides in — Auth
// stores the principal here instead of wrapping a second context, and
// the rate limiter and shedder share one tenant-weight resolution.
type reqState struct {
	trace string
	start time.Time
	sw    statusWriter

	mu      sync.Mutex
	lines   []string
	dropped int

	principal    Principal
	hasPrincipal bool

	weight    int64
	hasWeight bool

	// parked accumulates nanoseconds the handler spent deliberately
	// waiting (long-poll pull parks, reported via ObserveParked); the
	// load shedder subtracts it so an idle worker's empty 2s poll is not
	// read as a 2s service latency.
	parked atomic.Int64
}

// Logging is the outermost production middleware: it assigns (or adopts)
// the request's trace ID, exposes it via the response header and the
// context, and times the request. Log lines appended via Logf are
// buffered in the request's state and flushed — with the trace ID, route,
// status, and duration — only when the response is an error or a shed
// (5xx, 401, 403, 429), so a healthy request writes nothing anywhere.
// out defaults to os.Stderr.
func Logging(out io.Writer) Middleware {
	if out == nil {
		out = os.Stderr
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// TraceHeader is already in canonical MIME form, so indexing
			// the header maps directly skips Get/Set's canonicalization
			// scan on the hottest two header operations in the chain.
			var trace string
			if vv := r.Header[TraceHeader]; len(vv) > 0 {
				trace = vv[0]
			}
			if !validTraceID(trace) {
				trace = newTraceID()
			}
			st := &reqState{trace: trace, start: time.Now()}
			st.sw.ResponseWriter = w
			w.Header()[TraceHeader] = []string{trace}
			next.ServeHTTP(&st.sw, r.WithContext(context.WithValue(r.Context(), reqStateKey, st)))
			if flushWorthy(st.sw.status) {
				st.flush(out, r, st.sw.status, time.Since(st.start))
			}
		})
	}
}

// flushWorthy reports whether a response status should flush the request's
// buffered log: server errors, auth rejections, and throttle/shed 429s.
func flushWorthy(status int) bool {
	switch {
	case status >= 500:
		return true
	case status == http.StatusUnauthorized, status == http.StatusForbidden,
		status == http.StatusTooManyRequests:
		return true
	}
	return false
}

// flush writes the request summary line plus every buffered line in one
// Write, so concurrent flushes do not interleave mid-request.
func (st *reqState) flush(out io.Writer, r *http.Request, status int, d time.Duration) {
	st.mu.Lock()
	lines, dropped := st.lines, st.dropped
	st.mu.Unlock()
	buf := make([]byte, 0, 160+64*len(lines))
	buf = fmt.Appendf(buf, "ingress time=%s trace=%s method=%s path=%s status=%d dur=%s remote=%s\n",
		time.Now().UTC().Format(time.RFC3339Nano), st.trace, r.Method, r.URL.Path, status,
		d.Round(time.Microsecond), r.RemoteAddr)
	for _, l := range lines {
		buf = fmt.Appendf(buf, "ingress trace=%s %s\n", st.trace, l)
	}
	if dropped > 0 {
		buf = fmt.Appendf(buf, "ingress trace=%s log-lines-dropped=%d (cap %d)\n", st.trace, dropped, maxBufferedLines)
	}
	_, _ = out.Write(buf)
}

// maxBufferedLines caps one request's buffered log. Classic requests log a
// line or two, but a streaming request (the lease channel stays open for a
// worker's whole tenure) funnels every Logf of its lifetime through one
// reqState — without a cap, a chatty hours-long stream would grow the
// buffer without bound. Past the cap lines are counted, not stored, and
// the flush reports how many were dropped.
const maxBufferedLines = 64

// Logf appends one line to the request's buffered log (capped at
// maxBufferedLines; see above). Outside a Logging request (no state in
// ctx) it is a no-op, so library code can call it unconditionally.
func Logf(ctx context.Context, format string, args ...any) {
	st, _ := ctx.Value(reqStateKey).(*reqState)
	if st == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	st.mu.Lock()
	if len(st.lines) < maxBufferedLines {
		st.lines = append(st.lines, line)
	} else {
		st.dropped++
	}
	st.mu.Unlock()
}

// TraceID returns the request's trace ID ("" outside a Logging request).
func TraceID(ctx context.Context) string {
	if st, _ := ctx.Value(reqStateKey).(*reqState); st != nil {
		return st.trace
	}
	return ""
}
