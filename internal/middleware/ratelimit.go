package middleware

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridsched/internal/metrics"
)

// RateLimitConfig parameterizes the token-bucket rate limiter.
type RateLimitConfig struct {
	// Rate is the sustained request rate (requests/second) allowed per
	// client IP. Each authenticated tenant additionally gets a bucket of
	// Rate × weight — a heavier (paying) tenant's fleet may collectively
	// go proportionally faster. Must be > 0 to install the middleware.
	Rate float64
	// Burst is the bucket depth per client IP (tenant buckets scale by
	// weight too). 0 picks 2×Rate, at least 1.
	Burst float64
	// TenantWeight resolves an authenticated tenant's fair-share weight
	// (internal/service.Service.TenantWeight). Nil, or results < 1, count
	// as weight 1 so an unknown tenant still gets the base rate.
	TenantWeight func(tenant string) int64
	// MaxBuckets is a hard bound on the bucket table: refilled buckets
	// are evicted when it fills, and if none are reclaimable the least
	// recently active are dropped, so a flood of unique spoofed client
	// IPs cannot grow the table without bound. 0 picks 65536.
	MaxBuckets int
	// Now is the clock (tests); nil is time.Now.
	Now func() time.Time
}

func (c *RateLimitConfig) normalize() {
	if c.Burst <= 0 {
		c.Burst = math.Max(2*c.Rate, 1)
	}
	if c.MaxBuckets <= 0 {
		c.MaxBuckets = 65536
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// bucket is one token bucket: tokens at the last refill time. rate and
// burst are the bucket's OWN parameters — tenant buckets scale by weight,
// so eviction must compare against them, not the base config: a weight-4
// tenant mid-spend holds more than cfg.Burst tokens while still being
// actively limited.
type bucket struct {
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// limiter owns the bucket tables — one keyed by client IP, one by
// tenant, so keys need no allocating prefix on the hot path. One mutex
// over both maps is plenty: an uncontended lock plus two map operations
// is tens of nanoseconds, far below the JSON codec this chain fronts.
type limiter struct {
	cfg RateLimitConfig
	mu  sync.Mutex
	ip  map[string]*bucket
	ten map[string]*bucket
}

// take spends one token from key's bucket in table m (refilled at rate,
// capped at burst). When the bucket is empty it reports how long until a
// token accrues. now is passed in so one clock read serves both the IP
// and the tenant bucket of a request.
func (l *limiter) take(m map[string]*bucket, key string, rate, burst float64, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := m[key]
	if b == nil {
		if len(l.ip)+len(l.ten) >= l.cfg.MaxBuckets {
			l.evict(now)
			// MaxBuckets is a hard bound, not advisory: if nothing was
			// refilled enough to reclaim — every resident bucket mid-spend
			// is exactly the unique-key-flood shape — force out the least
			// recently active instead of growing the table.
			if over := len(l.ip) + len(l.ten) - l.cfg.MaxBuckets + 1; over > 0 {
				l.evictOldest(over)
			}
		}
		b = &bucket{tokens: burst, last: now, rate: rate, burst: burst}
		m[key] = b
	} else {
		b.tokens = math.Min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
		// Refresh the bucket's own parameters too: a tenant's weight can
		// change between requests, and eviction judges by them.
		b.last, b.rate, b.burst = now, rate, burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// evict drops buckets full or idle long enough to have refilled
// completely — indistinguishable from fresh ones — keeping the tables
// bounded under client-IP churn. Each bucket is judged against its own
// rate and burst (tenant buckets scale by weight), so an actively
// limited heavy tenant is never reset to a free full burst just because
// it holds more tokens than the base depth. Callers hold l.mu.
func (l *limiter) evict(now time.Time) {
	for _, m := range []map[string]*bucket{l.ip, l.ten} {
		for k, b := range m {
			if b.tokens >= b.burst || now.Sub(b.last).Seconds()*b.rate >= b.burst {
				delete(m, k)
			}
		}
	}
}

// evictOldest force-drops the n least recently refilled buckets, plus a
// batch margin so a sustained flood of unique keys sorts the table once
// per batch rather than once per insert. Only reached when evict
// reclaimed too little; the casualties are the longest-inactive buckets,
// whose loss costs their owners at most one fresh burst. Callers hold
// l.mu.
func (l *limiter) evictOldest(n int) {
	if batch := l.cfg.MaxBuckets / 16; batch > n {
		n = batch
	}
	type ref struct {
		m    map[string]*bucket
		key  string
		last time.Time
	}
	refs := make([]ref, 0, len(l.ip)+len(l.ten))
	for _, m := range []map[string]*bucket{l.ip, l.ten} {
		for k, b := range m {
			refs = append(refs, ref{m, k, b.last})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].last.Before(refs[j].last) })
	if n > len(refs) {
		n = len(refs)
	}
	for _, rf := range refs[:n] {
		delete(rf.m, rf.key)
	}
}

// RateLimit rejects requests above the configured token-bucket rates with
// 429 + Retry-After. Two keys gate every non-exempt request: the client
// IP (connection origin, pre-auth abuse control) and, when the request is
// authenticated, the tenant (aggregate across the tenant's whole fleet,
// scaled by its fair-share weight).
func RateLimit(cfg RateLimitConfig, c *metrics.IngressCounters) Middleware {
	cfg.normalize()
	l := &limiter{cfg: cfg, ip: make(map[string]*bucket), ten: make(map[string]*bucket)}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if Exempt(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			now := cfg.Now()
			if ok, retry := l.take(l.ip, clientIP(r), cfg.Rate, cfg.Burst, now); !ok {
				c.ThrottledIP.Add(1)
				Logf(r.Context(), "throttle=ip retryAfter=%s", retry)
				throttle(w, retry)
				return
			}
			if p, ok := PrincipalFrom(r.Context()); ok {
				weight := float64(1)
				if tw := resolveWeight(r.Context(), cfg.TenantWeight, p.Tenant); tw > 1 {
					weight = float64(tw)
				}
				if ok, retry := l.take(l.ten, p.Tenant, cfg.Rate*weight, cfg.Burst*weight, now); !ok {
					c.ThrottledTenant.Add(1)
					Logf(r.Context(), "throttle=tenant tenant=%q retryAfter=%s", p.Tenant, retry)
					throttle(w, retry)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// throttle writes the protocol's 429: Retry-After in whole seconds
// (rounded up, at least 1 — the header has one-second resolution) and the
// standard error body.
func throttle(w http.ResponseWriter, retry time.Duration) {
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSONError(w, http.StatusTooManyRequests, "rate limit exceeded; retry later")
}

// clientIP is the remote address without the port; the rate-limit key for
// unauthenticated abuse control. Hand-rolled rather than
// net.SplitHostPort because the error path there allocates, and
// non-host:port RemoteAddrs (in-process transports) are a hot path here.
func clientIP(r *http.Request) string {
	addr := r.RemoteAddr
	if strings.HasPrefix(addr, "[") { // "[::1]:port"
		if j := strings.IndexByte(addr, ']'); j > 0 {
			return addr[1:j]
		}
		return addr
	}
	i := strings.LastIndexByte(addr, ':')
	if i < 0 || strings.IndexByte(addr[:i], ':') >= 0 {
		return addr // no port, or a bare IPv6 address
	}
	return addr[:i]
}
