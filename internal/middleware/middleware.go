// Package middleware is gridschedd's production ingress: an onion-model,
// express/koa-style composable chain of http.Handler wrappers installed
// in front of the service mux (internal/service) by both the daemon
// (cmd/gridschedd) and the in-process transport (internal/live).
//
// Five middlewares ship here, applied in one explicit, fixed order
// (outermost first — see Ingress):
//
//  1. Logging — request-scoped structured logging with generated trace
//     IDs propagated via the X-Trace-Id header and the request context.
//     Log lines are buffered per request and flushed only on error or
//     shed, so the happy path pays near zero.
//  2. Recover — converts handler panics into 500s plus a metric instead
//     of killing the daemon.
//  3. MetricsText — appends the chain's own counters to GET /metrics.
//  4. Auth — per-tenant bearer-token authentication from a hot-reloadable
//     token file; admin endpoints require an admin token.
//  5. RateLimit — token buckets keyed by client IP and by authenticated
//     tenant, tenant limits scaled by fair-share weight.
//  6. LoadShed — latency-based admission control: when the request p99
//     breaches a bound, pulls and submits are shed 429 + Retry-After,
//     low-weight tenants first and the heaviest tenants last.
//
// GET /healthz, /readyz, and /metrics bypass auth, rate limiting, and
// shedding (Exempt) so probes never lie about the process. Decisions are
// exported as counters/gauges (metrics.IngressCounters) appended to the
// service's /metrics output. docs/INGRESS.md is the operator guide.
package middleware

import (
	"encoding/json"
	"net/http"

	"gridsched/internal/service/api"
)

// Middleware is one onion layer: it receives the next handler and returns
// the wrapped one.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in mw such that mw[0] is the outermost layer — requests
// traverse mw[0], mw[1], …, then h; responses unwind in reverse.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// Exempt reports whether path is a probe or metrics endpoint that
// bypasses auth, rate limiting, and load shedding: orchestrator probes
// and scrapers must see the truth even (especially) when the daemon is
// overloaded or the operator fat-fingered the token file.
func Exempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

// statusWriter records the response status so outer layers (logging,
// recovery, metrics append) can observe what inner layers wrote. wrapStatus
// reuses an existing wrapper, so one request allocates at most one.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func wrapStatus(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw
	}
	return &statusWriter{ResponseWriter: w}
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards http.Flusher through the wrapper — embedding the
// ResponseWriter interface promotes only its three methods, which would
// otherwise strand streaming handlers (the replication stream) behind the
// ingress chain.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// writeJSONError emits the protocol's standard error body
// (api.ErrorResponse) — middleware rejections look exactly like service
// rejections to clients.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: msg})
}
