package middleware

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched/internal/metrics"
	"gridsched/internal/service/api"
)

func TestChainOrder(t *testing.T) {
	var got []string
	tag := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				got = append(got, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, "handler")
	}), tag("a"), tag("b"), tag("c"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	want := "a,b,c,handler"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("traversal order %q, want %q", s, want)
	}
}

// TestRecoverPanic: a panicking handler must yield a 500 with the standard
// error body, tick the panic counter, and leave the server able to serve
// the next request.
func TestRecoverPanic(t *testing.T) {
	c := metrics.NewIngressCounters()
	var log bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		w.WriteHeader(http.StatusOK)
	}), Logging(&log), Recover(c, &log))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", rec.Code)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("panic body %q: not the standard error schema (err %v)", rec.Body.String(), err)
	}
	if got := c.Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	if !strings.Contains(log.String(), "kaboom") {
		t.Fatalf("panic value not logged:\n%s", log.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic request status = %d, want 200", rec.Code)
	}
}

// TestTraceID: the chain generates a trace ID, exposes it to the handler
// via the context, and returns it in the response header; a well-formed
// client-supplied ID is adopted instead.
func TestTraceID(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceID(r.Context())
	}), Logging(&bytes.Buffer{}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" {
		t.Fatal("handler saw no trace ID")
	}
	if got := rec.Header().Get(TraceHeader); got != seen {
		t.Fatalf("response %s = %q, handler saw %q", TraceHeader, got, seen)
	}

	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(TraceHeader, "caller-supplied-1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "caller-supplied-1" || rec.Header().Get(TraceHeader) != "caller-supplied-1" {
		t.Fatalf("client trace not adopted: handler %q, header %q", seen, rec.Header().Get(TraceHeader))
	}

	// Oversized IDs are replaced, not propagated.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(TraceHeader, strings.Repeat("x", maxTraceID+1))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(seen) > maxTraceID {
		t.Fatalf("oversized client trace propagated (%d bytes)", len(seen))
	}

	// IDs with characters outside [A-Za-z0-9_.-] are replaced too: they
	// are interpolated verbatim into flushed log lines, so a newline or
	// "key=value" text could forge or split trace-stamped entries.
	for _, evil := range []string{
		"evil\ningress trace=forged status=200",
		"id status=500",
		"id=x",
		"тrace", // non-ASCII
	} {
		req = httptest.NewRequest("GET", "/x", nil)
		req.Header[TraceHeader] = []string{evil}
		h.ServeHTTP(httptest.NewRecorder(), req)
		if seen == evil {
			t.Fatalf("unsafe client trace %q adopted", evil)
		}
	}
}

// TestLoggingBuffered: a healthy request writes nothing; an error-class
// response flushes the summary plus every Logf line, trace-stamped.
func TestLoggingBuffered(t *testing.T) {
	var out bytes.Buffer
	status := http.StatusOK
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Logf(r.Context(), "step=%s", "probe")
		w.WriteHeader(status)
	}), Logging(&out))

	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
	if out.Len() != 0 {
		t.Fatalf("healthy request flushed logs:\n%s", out.String())
	}

	status = http.StatusInternalServerError
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/bad", nil))
	s := out.String()
	if !strings.Contains(s, "status=500") || !strings.Contains(s, "step=probe") || !strings.Contains(s, "trace=") {
		t.Fatalf("error flush missing fields:\n%s", s)
	}
}

func authedChain(store *TokenStore, c *metrics.IngressCounters) http.Handler {
	return Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, _ := PrincipalFrom(r.Context())
		fmt.Fprintf(w, "tenant=%s admin=%v", p.Tenant, p.Admin)
	}), Logging(&bytes.Buffer{}), Auth(store, c))
}

func get(t *testing.T, h http.Handler, method, path, token string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestAuth(t *testing.T) {
	c := metrics.NewIngressCounters()
	store := NewTokenStore(map[string]Principal{
		"tok-gold":  {Tenant: "gold"},
		"tok-admin": {Tenant: "ops", Admin: true},
	})
	h := authedChain(store, c)

	if rec := get(t, h, "POST", "/v1/jobs", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", rec.Code)
	} else if rec.Header().Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	if rec := get(t, h, "POST", "/v1/jobs", "nope"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unknown token: %d, want 401", rec.Code)
	}
	if rec := get(t, h, "POST", "/v1/jobs", "tok-gold"); rec.Code != http.StatusOK ||
		rec.Body.String() != "tenant=gold admin=false" {
		t.Fatalf("valid token: %d %q", rec.Code, rec.Body.String())
	}
	// Probes and metrics stay open without any token.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := get(t, h, "GET", path, ""); rec.Code != http.StatusOK {
			t.Fatalf("%s with auth enabled: %d, want 200", path, rec.Code)
		}
	}
	// Admin endpoints: tenant tokens are 403, admin tokens pass.
	if rec := get(t, h, "PUT", "/v1/tenants/gold", "tok-gold"); rec.Code != http.StatusForbidden {
		t.Fatalf("non-admin on admin endpoint: %d, want 403", rec.Code)
	}
	if rec := get(t, h, "PUT", "/v1/tenants/gold", "tok-admin"); rec.Code != http.StatusOK {
		t.Fatalf("admin on admin endpoint: %d, want 200", rec.Code)
	}
	if c.AuthFailures.Load() != 2 || c.AuthDenied.Load() != 1 {
		t.Fatalf("counters: failures=%d denied=%d, want 2/1", c.AuthFailures.Load(), c.AuthDenied.Load())
	}
}

// TestTokenStoreReload: edits to the token file take effect on Reload
// (SIGHUP in the daemon), and a broken edit keeps the previous table
// instead of locking everyone out.
func TestTokenStoreReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens.conf")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write("# staff\ntok-a alice\ntok-b bob admin\n")
	store, err := LoadTokenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("Len = %d, want 2", store.Len())
	}
	if p, ok := store.lookup("tok-b"); !ok || p.Tenant != "bob" || !p.Admin {
		t.Fatalf("tok-b = %+v %v", p, ok)
	}

	write("tok-c carol\n")
	if err := store.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.lookup("tok-a"); ok {
		t.Fatal("revoked token still valid after reload")
	}
	if _, ok := store.lookup("tok-c"); !ok {
		t.Fatal("new token not loaded")
	}

	write("this line has way too many fields to parse\n")
	if err := store.Reload(); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, ok := store.lookup("tok-c"); !ok {
		t.Fatal("previous table not kept after failed reload")
	}
}

func TestParseTokens(t *testing.T) {
	if _, err := parseTokens([]byte("tok a\ntok b\n")); err == nil {
		t.Fatal("duplicate token accepted")
	}
	if _, err := parseTokens([]byte("tok a superuser\n")); err == nil {
		t.Fatal("unknown flag accepted")
	}
	tokens, err := parseTokens([]byte("tok - \n"))
	if err != nil {
		t.Fatal(err)
	}
	if p := tokens["tok"]; p.Tenant != "" || p.Admin {
		t.Fatalf("dash tenant = %+v, want default tenant", p)
	}
}

// fakeClock is a manually advanced time source shared by the rate-limit
// and shed tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBucketRefill pins the token-bucket math: burst spends down, tokens
// accrue at the configured rate, and the retry hint is the exact time to
// the next whole token.
func TestBucketRefill(t *testing.T) {
	clock := newFakeClock()
	l := &limiter{
		cfg: RateLimitConfig{Rate: 2, Burst: 2, Now: clock.now, MaxBuckets: 16},
		ip:  make(map[string]*bucket), ten: make(map[string]*bucket),
	}

	for i := 0; i < 2; i++ {
		if ok, _ := l.take(l.ip, "k", 2, 2, clock.now()); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := l.take(l.ip, "k", 2, 2, clock.now())
	if ok {
		t.Fatal("take beyond burst allowed")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry hint = %s, want 500ms (1 token at 2/s)", retry)
	}
	clock.advance(250 * time.Millisecond) // 0.5 tokens: still short
	if ok, retry := l.take(l.ip, "k", 2, 2, clock.now()); ok || retry != 250*time.Millisecond {
		t.Fatalf("after 250ms: ok=%v retry=%s, want refused/250ms", ok, retry)
	}
	clock.advance(250 * time.Millisecond) // the full token arrived
	if ok, _ := l.take(l.ip, "k", 2, 2, clock.now()); !ok {
		t.Fatal("take after full refill interval refused")
	}
	clock.advance(time.Hour) // refill caps at burst, not rate×elapsed
	for i := 0; i < 2; i++ {
		if ok, _ := l.take(l.ip, "k", 2, 2, clock.now()); !ok {
			t.Fatalf("take %d after long idle refused", i)
		}
	}
	if ok, _ := l.take(l.ip, "k", 2, 2, clock.now()); ok {
		t.Fatal("burst not capped after long idle")
	}
}

// TestRateLimitEvictionSparesWeightedTenants: tenant buckets are created
// with burst = Burst×weight, so a weight-4 tenant actively being limited
// holds more than cfg.Burst tokens most of the time. Eviction must judge
// each bucket against its OWN capacity — deleting the tenant's bucket
// would recreate it full on the next request, resetting the limit and
// granting a free 4× burst whenever the table is under pressure.
func TestRateLimitEvictionSparesWeightedTenants(t *testing.T) {
	clock := newFakeClock()
	l := &limiter{
		cfg: RateLimitConfig{Rate: 1, Burst: 2, MaxBuckets: 64, Now: clock.now},
		ip:  make(map[string]*bucket), ten: make(map[string]*bucket),
	}
	// The weight-4 tenant (rate 4, burst 8) spends one token: 7 left —
	// above cfg.Burst (2) but below its own capacity, i.e. mid-spend.
	l.take(l.ten, "gold", 4, 8, clock.now())
	// An IP bucket goes idle long enough to refill completely.
	l.take(l.ip, "198.51.100.9", 1, 2, clock.now())
	clock.advance(3 * time.Second)
	l.take(l.ten, "gold", 4, 8, clock.now()) // active again: refilled to cap, spends 1

	l.mu.Lock()
	l.evict(clock.now())
	l.mu.Unlock()
	if l.ten["gold"] == nil {
		t.Fatal("active weighted tenant bucket evicted (judged against base burst)")
	}
	if l.ip["198.51.100.9"] != nil {
		t.Fatal("fully refilled idle IP bucket not evicted")
	}
}

// TestRateLimitHardBound: a sustained flood of unique client IPs creates
// buckets that are all mid-spend (not reclaimable by evict), so the
// limiter must fall back to dropping the least recently active — the
// table may never exceed MaxBuckets.
func TestRateLimitHardBound(t *testing.T) {
	clock := newFakeClock()
	cfg := RateLimitConfig{Rate: 1, Burst: 4, MaxBuckets: 8, Now: clock.now}
	l := &limiter{cfg: cfg, ip: make(map[string]*bucket), ten: make(map[string]*bucket)}
	for i := 0; i < 100; i++ {
		l.take(l.ip, fmt.Sprintf("10.0.%d.%d", i/256, i%256), cfg.Rate, cfg.Burst, clock.now())
		if n := len(l.ip) + len(l.ten); n > cfg.MaxBuckets {
			t.Fatalf("bucket table grew to %d after %d unique IPs, want <= %d", n, i+1, cfg.MaxBuckets)
		}
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	clock := newFakeClock()
	c := metrics.NewIngressCounters()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), RateLimit(RateLimitConfig{Rate: 1, Burst: 1, Now: clock.now}, c))

	req := func(path string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("POST", path, nil)
		r.RemoteAddr = "198.51.100.7:4242"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}
	if rec := req("/v1/jobs"); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	rec := req("/v1/jobs")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if c.ThrottledIP.Load() != 1 {
		t.Fatalf("ThrottledIP = %d, want 1", c.ThrottledIP.Load())
	}
	// Probes are never throttled, even from an exhausted IP.
	if rec := req("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz throttled: %d", rec.Code)
	}
}

// TestLoadShedWeightedOrdering drives the shedder with a fake clock and
// proves the ordering contract: under a sustained p99 breach the
// weight-1 tenant is shed while the weight-4 tenant still passes; one
// escalation later both shed; and the first decay tick readmits the
// heavy tenant first.
func TestLoadShedWeightedOrdering(t *testing.T) {
	clock := newFakeClock()
	c := metrics.NewIngressCounters()
	weights := map[string]int64{"bronze": 1, "gold": 4}
	slow := true // while set, the handler "takes" 1ms of fake time
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow {
			clock.advance(time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
	}), LoadShed(LoadShedConfig{
		P99:          500 * time.Microsecond,
		MinSamples:   2,
		EvalEvery:    10 * time.Millisecond,
		TenantWeight: func(tn string) int64 { return weights[tn] },
		Now:          clock.now,
	}, c))

	send := func(tenant, method, path string) int {
		r := httptest.NewRequest(method, path, nil)
		r = r.WithContext(WithPrincipal(r.Context(), Principal{Tenant: tenant}))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec.Code
	}

	// Fill the window with slow samples from both weight classes (GETs:
	// observed but never sheddable). The six requests advance fake time
	// 6ms total — inside one eval interval, so no escalation yet.
	for i := 0; i < 3; i++ {
		send("bronze", "GET", "/v1/jobs")
		send("gold", "GET", "/v1/jobs")
	}

	// First eval tick after the breach: level 1, bar = lightest class.
	clock.advance(11 * time.Millisecond)
	if code := send("bronze", "POST", "/v1/jobs"); code != http.StatusTooManyRequests {
		t.Fatalf("bronze submit at level 1: %d, want 429", code)
	}
	if code := send("gold", "POST", "/v1/jobs"); code != http.StatusOK {
		t.Fatalf("gold submit at level 1: %d, want 200 (sheds last)", code)
	}
	if code := send("bronze", "POST", "/v1/workers/w1/pull"); code != http.StatusTooManyRequests {
		t.Fatalf("bronze pull at level 1: %d, want 429", code)
	}
	// Reports are never shed, whatever the level: they retire work.
	if code := send("bronze", "POST", "/v1/assignments/a1/report"); code != http.StatusOK {
		t.Fatalf("bronze report at level 1: %d, want 200", code)
	}

	// Still breaching at the next tick: level 2 reaches the top class.
	clock.advance(11 * time.Millisecond)
	if code := send("gold", "POST", "/v1/jobs"); code != http.StatusTooManyRequests {
		t.Fatalf("gold submit at level 2: %d, want 429", code)
	}

	// Recovery: the handler is fast again and sheds kept the window from
	// refreshing, so the next ticks decay the level — gold readmitted
	// first, bronze still barred one tick later.
	slow = false
	clock.advance(11 * time.Millisecond)
	if code := send("gold", "POST", "/v1/jobs"); code != http.StatusOK {
		t.Fatalf("gold submit after first decay: %d, want 200", code)
	}
	if code := send("bronze", "POST", "/v1/jobs"); code != http.StatusTooManyRequests {
		t.Fatalf("bronze submit after first decay: %d, want 429 (readmitted last)", code)
	}

	if c.TenantSheds("bronze") < 2 || c.TenantSheds("gold") != 1 {
		t.Fatalf("shed attribution: bronze=%d gold=%d", c.TenantSheds("bronze"), c.TenantSheds("gold"))
	}
	if c.Sheds.Load() != c.TenantSheds("bronze")+c.TenantSheds("gold") {
		t.Fatalf("Sheds=%d != per-tenant sum", c.Sheds.Load())
	}
}

// TestLoadShedIgnoresParkedWaits: an idle fleet long-polling for work
// parks server-side for the whole poll budget. The handler reports that
// wait via ObserveParked, and the shedder must subtract it — otherwise
// every empty 2s poll reads as a 2s latency, breaches any realistic p99
// bound, and sheds a completely unloaded system. Exercised both through
// the full chain (Logging carries the counter) and standalone (LoadShed
// installs its own).
func TestLoadShedIgnoresParkedWaits(t *testing.T) {
	for _, tc := range []struct {
		name       string
		withLogger bool
	}{{"full chain", true}, {"standalone", false}} {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			c := metrics.NewIngressCounters()
			handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				clock.advance(2 * time.Second) // the idle long-poll park
				ObserveParked(r.Context(), 2*time.Second)
				w.WriteHeader(http.StatusOK)
			})
			shed := LoadShed(LoadShedConfig{
				P99: 250 * time.Millisecond, MinSamples: 2,
				EvalEvery: 10 * time.Millisecond, Now: clock.now,
			}, c)
			var h http.Handler
			if tc.withLogger {
				h = Chain(handler, Logging(&bytes.Buffer{}), shed)
			} else {
				h = Chain(handler, shed)
			}
			// Every request is 2s of fake time apart, so each one lands on
			// an eval tick with a full window of parked-only samples.
			for i := 0; i < 20; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/workers/w1/pull", nil))
				if rec.Code != http.StatusOK {
					t.Fatalf("pull %d shed (%d) on an idle system: parked waits counted as latency", i, rec.Code)
				}
			}
			if lvl := c.ShedLevel.Load(); lvl != 0 {
				t.Fatalf("shed level = %d on an idle system, want 0", lvl)
			}
		})
	}
}

func TestLoadShedRetryAfterHeader(t *testing.T) {
	clock := newFakeClock()
	c := metrics.NewIngressCounters()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clock.advance(5 * time.Millisecond)
	}), LoadShed(LoadShedConfig{
		P99: time.Millisecond, MinSamples: 1, EvalEvery: 10 * time.Millisecond,
		RetryAfter: 3 * time.Second, Now: clock.now,
	}, c))
	r := httptest.NewRequest("POST", "/v1/jobs", nil)
	h.ServeHTTP(httptest.NewRecorder(), r)
	clock.advance(11 * time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
}

// TestMetricsText: the chain appends its own Prometheus lines after the
// inner /metrics body.
func TestMetricsText(t *testing.T) {
	c := metrics.NewIngressCounters()
	h := Ingress(Config{Counters: c}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "service_inner_metric 42")
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/jobs", nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "service_inner_metric 42") {
		t.Fatalf("inner body lost:\n%s", body)
	}
	if !strings.Contains(body, "gridsched_ingress_requests_total 1") {
		t.Fatalf("ingress lines not appended (want requests_total 1, probes exempt):\n%s", body)
	}
}

func TestPercentile(t *testing.T) {
	lw := metrics.NewLatencyWindow(8)
	for i := 1; i <= 100; i++ {
		lw.Observe(time.Duration(i) * time.Millisecond)
	}
	// Ring of 8: only 93..100ms survive.
	if got := lw.Percentile(1.0); got != 100*time.Millisecond {
		t.Fatalf("max = %s, want 100ms", got)
	}
	if got := lw.Percentile(0.5); got < 93*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("median %s outside resident window", got)
	}
	if lw.Samples() != 8 || lw.Total() != 100 {
		t.Fatalf("Samples=%d Total=%d, want 8/100", lw.Samples(), lw.Total())
	}
}
