package middleware

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"

	"gridsched/internal/metrics"
)

// Recover converts a handler panic into a 500 response plus a metric
// (IngressCounters.Panics) instead of letting net/http kill the
// connection — or, under the in-process transport, the whole caller. The
// panic value and stack go to out (default os.Stderr) immediately, and a
// line lands in the request's buffered log so the Logging flush carries
// the trace ID alongside.
//
// http.ErrAbortHandler is re-panicked untouched: it is net/http's
// sanctioned way to abort a response and is not a failure.
func Recover(c *metrics.IngressCounters, out io.Writer) Middleware {
	if out == nil {
		out = os.Stderr
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrapStatus(w)
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				c.Panics.Add(1)
				Logf(r.Context(), "panic=%q", fmt.Sprint(p))
				fmt.Fprintf(out, "ingress: panic serving %s %s (trace %s): %v\n%s",
					r.Method, r.URL.Path, TraceID(r.Context()), p, debug.Stack())
				if sw.status == 0 {
					writeJSONError(sw, http.StatusInternalServerError, "internal server error")
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// MetricsText appends the ingress chain's own counters to a successful
// GET /metrics response. The Prometheus text format is line-oriented, so
// appending after the inner handler's body keeps the service and the
// chain decoupled: internal/service renders its counters without knowing
// a chain exists, and the chain adds its lines on the way out.
func MetricsText(c *metrics.IngressCounters) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet || r.URL.Path != "/metrics" {
				next.ServeHTTP(w, r)
				return
			}
			sw := wrapStatus(w)
			next.ServeHTTP(sw, r)
			if sw.status == http.StatusOK {
				_ = c.WriteText(sw)
			}
		})
	}
}
