package middleware

import (
	"io"
	"net/http"
	"time"

	"gridsched/internal/metrics"
)

// Config assembles the full production ingress chain. Zero-value fields
// disable their middleware: a nil Tokens runs without authentication, a
// zero RateLimit without throttling, a zero ShedP99 without shedding —
// so a dev gridschedd with no flags behaves exactly as before, just with
// tracing and panic containment.
type Config struct {
	// Counters receives every ingress decision; nil allocates a private
	// set (they are still served at /metrics via the chain).
	Counters *metrics.IngressCounters
	// Log receives the buffered request logs and panic stacks (default
	// os.Stderr).
	Log io.Writer

	// Tokens enables bearer-token auth when non-nil.
	Tokens *TokenStore

	// RateLimit enables token-bucket throttling (requests/second per
	// client IP; per-tenant buckets scale by weight) when > 0. RateBurst
	// is the bucket depth (0 picks 2×RateLimit).
	RateLimit float64
	RateBurst float64

	// ShedP99 enables latency-based load shedding when > 0: once the p99
	// of admitted requests breaches it, submits and pulls are shed 429,
	// lightest tenants first. The remaining Shed* knobs tune the window
	// and cadence (zero values pick the LoadShedConfig defaults).
	ShedP99        time.Duration
	ShedWindow     int
	ShedMinSamples int
	ShedEvalEvery  time.Duration
	ShedRetryAfter time.Duration

	// TenantWeight resolves tenant fair-share weights for the rate
	// limiter and the shedder (internal/service.Service.TenantWeight).
	TenantWeight func(tenant string) int64

	// Now is the clock (tests); nil is time.Now.
	Now func() time.Time
}

// Ingress wraps h in the production middleware chain, outermost first:
//
//	Logging → Recover → MetricsText → Auth → RateLimit → LoadShed → h
//
// The order is fixed and load-bearing: Logging is outermost so every
// deeper decision lands in a trace-stamped buffer; Recover sits above
// everything that could panic; MetricsText decorates /metrics before
// auth so the scrape endpoint stays open; Auth runs before RateLimit so
// tenant buckets key off verified principals; LoadShed is innermost so
// its latency window measures (and protects) only authenticated,
// unthrottled traffic.
func Ingress(cfg Config, h http.Handler) http.Handler {
	c := cfg.Counters
	if c == nil {
		c = metrics.NewIngressCounters()
	}
	mw := []Middleware{
		Logging(cfg.Log),
		Recover(c, cfg.Log),
		MetricsText(c),
		countRequests(c),
	}
	if cfg.Tokens != nil {
		mw = append(mw, Auth(cfg.Tokens, c))
	}
	if cfg.RateLimit > 0 {
		mw = append(mw, RateLimit(RateLimitConfig{
			Rate:         cfg.RateLimit,
			Burst:        cfg.RateBurst,
			TenantWeight: cfg.TenantWeight,
			Now:          cfg.Now,
		}, c))
	}
	if cfg.ShedP99 > 0 {
		mw = append(mw, LoadShed(LoadShedConfig{
			P99:          cfg.ShedP99,
			Window:       cfg.ShedWindow,
			MinSamples:   cfg.ShedMinSamples,
			EvalEvery:    cfg.ShedEvalEvery,
			RetryAfter:   cfg.ShedRetryAfter,
			TenantWeight: cfg.TenantWeight,
			Now:          cfg.Now,
		}, c))
	}
	return Chain(h, mw...)
}

// countRequests ticks the total-requests counter for every non-exempt
// request entering the chain, admitted or not.
func countRequests(c *metrics.IngressCounters) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !Exempt(r.URL.Path) {
				c.Requests.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
}
