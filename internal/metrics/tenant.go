package metrics

import (
	"fmt"
	"io"
)

// ShareWindow tracks which key each of the last N observations belonged to
// and reports every key's fraction of the window. The gridschedd fair-share
// arbiter feeds it one observation per dispatch, keyed by tenant, and the
// per-tenant "achieved share" gauges at /metrics read it back.
//
// Not safe for concurrent use: the service observes and reads under its own
// mutex, matching the rest of its dispatch state.
type ShareWindow struct {
	ring   []string
	counts map[string]int
	next   int
	filled bool
}

// NewShareWindow returns a window over the last size observations.
func NewShareWindow(size int) *ShareWindow {
	if size < 1 {
		size = 1
	}
	return &ShareWindow{ring: make([]string, size), counts: make(map[string]int)}
}

// Observe records one event for key, evicting the oldest observation once
// the window is full.
func (w *ShareWindow) Observe(key string) {
	if w.filled {
		old := w.ring[w.next]
		if w.counts[old] <= 1 {
			delete(w.counts, old)
		} else {
			w.counts[old]--
		}
	}
	w.ring[w.next] = key
	w.counts[key]++
	w.next++
	if w.next == len(w.ring) {
		w.next, w.filled = 0, true
	}
}

// Len reports how many observations the window currently holds.
func (w *ShareWindow) Len() int {
	if w.filled {
		return len(w.ring)
	}
	return w.next
}

// Share reports key's fraction of the current window (0 when empty).
func (w *ShareWindow) Share(key string) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	return float64(w.counts[key]) / float64(n)
}

// TenantLine is one tenant's gauge row rendered by WriteTenantText.
type TenantLine struct {
	Tenant        string
	Weight        int64
	InFlight      int64
	MaxInFlight   int64
	ShareTarget   float64
	ShareAchieved float64
	Dispatches    int64
	Throttles     int64
}

// WriteTenantText renders per-tenant fair-share metrics in the Prometheus
// text exposition format, one labeled series per tenant. The anonymous
// default tenant renders with an empty label value.
func WriteTenantText(w io.Writer, lines []TenantLine) error {
	if len(lines) == 0 {
		return nil
	}
	for _, m := range []struct {
		name, kind string
		v          func(TenantLine) string
	}{
		{"gridsched_tenant_weight", "gauge", func(l TenantLine) string { return fmt.Sprintf("%d", l.Weight) }},
		{"gridsched_tenant_inflight", "gauge", func(l TenantLine) string { return fmt.Sprintf("%d", l.InFlight) }},
		{"gridsched_tenant_quota", "gauge", func(l TenantLine) string { return fmt.Sprintf("%d", l.MaxInFlight) }},
		{"gridsched_tenant_share_target", "gauge", func(l TenantLine) string { return fmt.Sprintf("%g", l.ShareTarget) }},
		{"gridsched_tenant_share_achieved", "gauge", func(l TenantLine) string { return fmt.Sprintf("%g", l.ShareAchieved) }},
		{"gridsched_tenant_dispatches_total", "counter", func(l TenantLine) string { return fmt.Sprintf("%d", l.Dispatches) }},
		{"gridsched_tenant_quota_throttles_total", "counter", func(l TenantLine) string { return fmt.Sprintf("%d", l.Throttles) }},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		for _, l := range lines {
			if _, err := fmt.Fprintf(w, "%s{tenant=%q} %s\n", m.name, l.Tenant, m.v(l)); err != nil {
				return err
			}
		}
	}
	return nil
}
