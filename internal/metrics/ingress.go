package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// IngressCounters are the operational metrics of the ingress middleware
// chain (internal/middleware): lock-free atomic counters fed from the
// request path, rendered in the Prometheus text exposition format and
// appended to the service's /metrics output by the chain itself.
type IngressCounters struct {
	// Requests counts every request entering the chain (probes included).
	Requests atomic.Int64
	// Panics counts handler panics converted into 500s by the recovery
	// middleware instead of killing the daemon.
	Panics atomic.Int64
	// AuthFailures counts requests rejected 401 (missing/unknown token);
	// AuthDenied counts 403s (valid token without the required privilege).
	AuthFailures atomic.Int64
	AuthDenied   atomic.Int64
	// ThrottledIP / ThrottledTenant count 429s from the client-IP and
	// per-tenant token buckets respectively.
	ThrottledIP     atomic.Int64
	ThrottledTenant atomic.Int64
	// Sheds counts requests rejected 429 by the latency-based load
	// shedder; per-tenant totals are kept alongside (ObserveShed).
	Sheds atomic.Int64

	// ShedLevel is the shedder's current escalation level (gauge; 0 = not
	// shedding). RequestP99Nanos is the most recently evaluated p99 of the
	// request-latency window (gauge).
	ShedLevel       atomic.Int64
	RequestP99Nanos atomic.Int64

	mu           sync.Mutex
	shedByTenant map[string]int64
}

// NewIngressCounters returns zeroed counters.
func NewIngressCounters() *IngressCounters {
	return &IngressCounters{shedByTenant: make(map[string]int64)}
}

// ObserveShed records one shed request attributed to tenant ("" is the
// anonymous/unauthenticated class).
func (c *IngressCounters) ObserveShed(tenant string) {
	c.Sheds.Add(1)
	c.mu.Lock()
	c.shedByTenant[tenant]++
	c.mu.Unlock()
}

// TenantSheds returns one tenant's shed total (tests and dashboards).
func (c *IngressCounters) TenantSheds(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shedByTenant[tenant]
}

// WriteText renders every ingress metric as Prometheus text exposition
// lines.
func (c *IngressCounters) WriteText(w io.Writer) error {
	for _, m := range []struct {
		name, kind string
		v          int64
	}{
		{"gridsched_ingress_requests_total", "counter", c.Requests.Load()},
		{"gridsched_ingress_panics_total", "counter", c.Panics.Load()},
		{"gridsched_ingress_auth_failures_total", "counter", c.AuthFailures.Load()},
		{"gridsched_ingress_auth_denied_total", "counter", c.AuthDenied.Load()},
		{"gridsched_ingress_throttled_ip_total", "counter", c.ThrottledIP.Load()},
		{"gridsched_ingress_throttled_tenant_total", "counter", c.ThrottledTenant.Load()},
		{"gridsched_ingress_sheds_total", "counter", c.Sheds.Load()},
		{"gridsched_ingress_shed_level", "gauge", c.ShedLevel.Load()},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.kind, m.name, m.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE gridsched_ingress_request_p99_seconds gauge\ngridsched_ingress_request_p99_seconds %g\n",
		float64(c.RequestP99Nanos.Load())/1e9); err != nil {
		return err
	}
	c.mu.Lock()
	tenants := make([]string, 0, len(c.shedByTenant))
	for t := range c.shedByTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	lines := make([]string, len(tenants))
	for i, t := range tenants {
		lines[i] = fmt.Sprintf("gridsched_ingress_tenant_sheds_total{tenant=%q} %d", t, c.shedByTenant[t])
	}
	c.mu.Unlock()
	if len(lines) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "# TYPE gridsched_ingress_tenant_sheds_total counter"); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// LatencyWindow is a fixed-size ring of the most recent request latencies,
// the percentile source for latency-based load shedding. The existing
// dispatch summary (ServiceCounters.ObserveDispatch) records count+sum+max
// — enough for rate dashboards but not for a tail-latency bound — so the
// ingress chain keeps this bounded sample window alongside and evaluates
// p99 over it at a fixed cadence. Writes are one mutexed ring store;
// Percentile copies and sorts the (small, bounded) window and is only
// called at evaluation ticks, never per request.
type LatencyWindow struct {
	mu    sync.Mutex
	buf   []int64
	n     int   // filled entries, ≤ len(buf)
	idx   int   // next write position
	total int64 // lifetime observations
}

// NewLatencyWindow returns a window of the given sample capacity (≤ 0
// picks 1024).
func NewLatencyWindow(size int) *LatencyWindow {
	if size <= 0 {
		size = 1024
	}
	return &LatencyWindow{buf: make([]int64, size)}
}

// Observe folds one latency into the ring, evicting the oldest sample
// once full.
func (lw *LatencyWindow) Observe(d time.Duration) {
	lw.mu.Lock()
	lw.buf[lw.idx] = int64(d)
	lw.idx = (lw.idx + 1) % len(lw.buf)
	if lw.n < len(lw.buf) {
		lw.n++
	}
	lw.total++
	lw.mu.Unlock()
}

// Total is the lifetime observation count — evaluation ticks compare it
// across ticks to detect a stalled window (no fresh samples).
func (lw *LatencyWindow) Total() int64 {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.total
}

// Samples is the number of latencies currently resident in the window.
func (lw *LatencyWindow) Samples() int {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.n
}

// Percentile returns the q-th (0 < q ≤ 1) latency percentile of the
// resident samples, 0 when the window is empty.
func (lw *LatencyWindow) Percentile(q float64) time.Duration {
	lw.mu.Lock()
	samples := make([]int64, lw.n)
	copy(samples, lw.buf[:lw.n])
	lw.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q*float64(len(samples))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return time.Duration(samples[i])
}
