package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestShareWindowEvictsOldest(t *testing.T) {
	w := NewShareWindow(4)
	if w.Len() != 0 || w.Share("a") != 0 {
		t.Fatalf("empty window: len %d share %g", w.Len(), w.Share("a"))
	}
	for _, k := range []string{"a", "a", "b", "a"} {
		w.Observe(k)
	}
	if w.Len() != 4 {
		t.Fatalf("len %d, want 4", w.Len())
	}
	if got := w.Share("a"); got != 0.75 {
		t.Fatalf("share a = %g, want 0.75", got)
	}
	// Four more observations push the first four out entirely.
	for i := 0; i < 4; i++ {
		w.Observe("c")
	}
	if got := w.Share("a"); got != 0 {
		t.Fatalf("share a after eviction = %g, want 0", got)
	}
	if got := w.Share("c"); got != 1 {
		t.Fatalf("share c = %g, want 1", got)
	}
}

func TestShareWindowPartialFill(t *testing.T) {
	w := NewShareWindow(100)
	w.Observe("x")
	w.Observe("y")
	w.Observe("x")
	if w.Len() != 3 {
		t.Fatalf("len %d, want 3", w.Len())
	}
	if got := w.Share("x"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("share x = %g, want 2/3", got)
	}
}

func TestWriteTenantText(t *testing.T) {
	var sb strings.Builder
	err := WriteTenantText(&sb, []TenantLine{
		{Tenant: "", Weight: 1, ShareTarget: 0.25, ShareAchieved: 0.2, Dispatches: 7},
		{Tenant: "acme", Weight: 3, InFlight: 2, MaxInFlight: 4, ShareTarget: 0.75, Dispatches: 21, Throttles: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gridsched_tenant_weight gauge",
		`gridsched_tenant_weight{tenant=""} 1`,
		`gridsched_tenant_weight{tenant="acme"} 3`,
		`gridsched_tenant_inflight{tenant="acme"} 2`,
		`gridsched_tenant_quota{tenant="acme"} 4`,
		`gridsched_tenant_share_target{tenant="acme"} 0.75`,
		`gridsched_tenant_share_achieved{tenant=""} 0.2`,
		`gridsched_tenant_dispatches_total{tenant="acme"} 21`,
		`gridsched_tenant_quota_throttles_total{tenant="acme"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// No tenants, no output (the shared counters section stands alone).
	sb.Reset()
	if err := WriteTenantText(&sb, nil); err != nil || sb.Len() != 0 {
		t.Fatalf("empty render: err %v, %d bytes", err, sb.Len())
	}
}
