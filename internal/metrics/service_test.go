package metrics

import (
	"strings"
	"testing"
)

func TestServiceCountersWriteText(t *testing.T) {
	c := NewServiceCounters()
	c.JobsSubmitted.Add(2)
	c.Pulls.Add(17)
	c.ActiveLeases.Add(3)
	c.ActiveLeases.Add(-1)

	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gridsched_jobs_submitted_total counter",
		"gridsched_jobs_submitted_total 2",
		"gridsched_pulls_total 17",
		"# TYPE gridsched_active_leases gauge",
		"gridsched_active_leases 2",
		"gridsched_completions_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotPauseGauges(t *testing.T) {
	c := NewServiceCounters()
	c.ObserveSnapshotPause(2_500_000) // 2.5ms
	c.ObserveSnapshotPause(1_000_000) // 1ms: last moves, max stays

	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gridsched_snapshot_pause_ms gauge",
		`gridsched_snapshot_pause_ms{stat="last"} 1`,
		`gridsched_snapshot_pause_ms{stat="max"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
