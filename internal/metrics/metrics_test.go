package metrics

import "testing"

func TestCollectorTotals(t *testing.T) {
	c := NewCollector(3)
	c.Sites[0] = SiteMetrics{Requests: 10, FileTransfers: 100, BytesFetched: 2500}
	c.Sites[1] = SiteMetrics{Requests: 5, FileTransfers: 50, BytesFetched: 1250}
	c.Sites[2] = SiteMetrics{Requests: 1, FileTransfers: 7, BytesFetched: 175}
	if got := c.TotalFileTransfers(); got != 157 {
		t.Fatalf("transfers = %d", got)
	}
	if got := c.TotalBytesFetched(); got != 3925 {
		t.Fatalf("bytes = %v", got)
	}
	if got := c.TotalRequests(); got != 16 {
		t.Fatalf("requests = %d", got)
	}
}

func TestRedundantTransfers(t *testing.T) {
	c := NewCollector(2)
	c.Sites[0].FileTransfers = 120
	c.Sites[1].FileTransfers = 80
	c.DistinctFilesFetched = 150
	if got := c.RedundantTransfers(); got != 50 {
		t.Fatalf("redundant = %d", got)
	}
}

func TestSiteMeans(t *testing.T) {
	m := SiteMetrics{Requests: 4, WaitTimeSum: 100, TransferTimeSum: 40}
	if got := m.MeanWaitSec(); got != 25 {
		t.Fatalf("mean wait = %v", got)
	}
	if got := m.MeanTransferSec(); got != 10 {
		t.Fatalf("mean transfer = %v", got)
	}
	empty := SiteMetrics{}
	if empty.MeanWaitSec() != 0 || empty.MeanTransferSec() != 0 {
		t.Fatal("zero-request means not zero")
	}
}
