// Package metrics collects per-run simulation measurements: the quantities
// behind the paper's Figures 4-8 (makespan, file transfer counts) and
// Table 3 (per-site waiting time, transfer time, transfer counts).
package metrics

// SiteMetrics accumulates data-server activity at one site.
type SiteMetrics struct {
	// Requests is the number of batch file requests served.
	Requests int64 `json:"requests"`
	// FileTransfers counts files fetched from the external file server
	// (cache misses). This is the paper's "# of file transfers".
	FileTransfers int64 `json:"fileTransfers"`
	// BytesFetched is FileTransfers scaled by file size.
	BytesFetched float64 `json:"bytesFetched"`
	// WaitTimeSum accumulates, over requests, the time spent queued at
	// the data server before service began (seconds).
	WaitTimeSum float64 `json:"waitTimeSumSec"`
	// TransferTimeSum accumulates time spent fetching missing files from
	// the external file server (seconds).
	TransferTimeSum float64 `json:"transferTimeSumSec"`
	// Evictions counts files displaced from the site's storage.
	Evictions int64 `json:"evictions"`
	// ProactiveReplicas counts files pushed to the site by the data
	// replication mechanism (not fetched on demand).
	ProactiveReplicas int64 `json:"proactiveReplicas"`
	// TasksExecuted counts executions started at the site (including
	// replicas later cancelled); TasksCompleted counts executions that
	// ran to completion here.
	TasksExecuted  int64 `json:"tasksExecuted"`
	TasksCompleted int64 `json:"tasksCompleted"`
}

// MeanWaitSec returns the mean queueing delay per batch request.
func (m *SiteMetrics) MeanWaitSec() float64 {
	if m.Requests == 0 {
		return 0
	}
	return m.WaitTimeSum / float64(m.Requests)
}

// MeanTransferSec returns the mean fetch time per batch request.
func (m *SiteMetrics) MeanTransferSec() float64 {
	if m.Requests == 0 {
		return 0
	}
	return m.TransferTimeSum / float64(m.Requests)
}

// Collector gathers a run's metrics.
type Collector struct {
	Sites []SiteMetrics `json:"sites"`
	// MakespanSec is the virtual time at which the last task completed.
	MakespanSec float64 `json:"makespanSec"`
	// TasksCompleted counts distinct completed tasks; CancelledExecutions
	// counts replica executions interrupted or abandoned.
	TasksCompleted      int   `json:"tasksCompleted"`
	CancelledExecutions int64 `json:"cancelledExecutions"`
	// FailedExecutions counts executions lost to worker churn.
	FailedExecutions int64 `json:"failedExecutions"`
	// DistinctFilesFetched counts files fetched from the external file
	// server at least once anywhere in the grid.
	DistinctFilesFetched int64 `json:"distinctFilesFetched"`
}

// RedundantTransfers returns fetches beyond the first fetch of each file:
// re-fetches after eviction plus duplicate fetches at multiple sites. This
// is the reuse-failure signal schedulers try to minimize, and the series
// comparable to the paper's Figure 5 (whose values sit far below the
// distinct-file count, so it cannot be counting total fetches).
func (c *Collector) RedundantTransfers() int64 {
	return c.TotalFileTransfers() - c.DistinctFilesFetched
}

// NewCollector returns a collector for the given number of sites.
func NewCollector(sites int) *Collector {
	return &Collector{Sites: make([]SiteMetrics, sites)}
}

// TotalFileTransfers sums transfers across sites (Figure 5's y-axis).
func (c *Collector) TotalFileTransfers() int64 {
	var n int64
	for i := range c.Sites {
		n += c.Sites[i].FileTransfers
	}
	return n
}

// TotalBytesFetched sums fetched bytes across sites.
func (c *Collector) TotalBytesFetched() float64 {
	var n float64
	for i := range c.Sites {
		n += c.Sites[i].BytesFetched
	}
	return n
}

// TotalRequests sums batch requests across sites.
func (c *Collector) TotalRequests() int64 {
	var n int64
	for i := range c.Sites {
		n += c.Sites[i].Requests
	}
	return n
}
