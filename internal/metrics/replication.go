package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ReplicationCounters are the WAL-replication metrics of one node, fed by
// the leader's stream handler (internal/service) or the follower loop and
// appended to /metrics next to the ServiceCounters.
type ReplicationCounters struct {
	// Leader side.
	StreamsActive  atomic.Int64 // open follower stream connections (gauge)
	FramesStreamed atomic.Int64 // frames sent to followers

	// Follower side.
	FramesApplied    atomic.Int64 // frames appended to the local journal
	SnapshotsApplied atomic.Int64 // snapshot catch-ups installed
	Reconnects       atomic.Int64 // stream reconnect attempts
	Halted           atomic.Int64 // 1 after a terminal divergence/journal halt (gauge)

	// Position gauges; lag = LeaderLSN - LocalLSN on a follower.
	LocalLSN  atomic.Int64
	LeaderLSN atomic.Int64
}

// roleGauge renders the conventional one-hot role gauge so dashboards can
// group nodes by role with a label selector.
var replicationRoles = []string{"leader", "follower", "recovering"}

// WriteReplicationText renders the node's replication role and counters
// in the Prometheus text exposition format. role must be one of the
// api.Role* values; c may be nil (role-only output for nodes that do not
// replicate).
func WriteReplicationText(w io.Writer, role string, c *ReplicationCounters) error {
	if _, err := fmt.Fprintf(w, "# TYPE gridsched_replication_role gauge\n"); err != nil {
		return err
	}
	for _, r := range replicationRoles {
		v := 0
		if r == role {
			v = 1
		}
		if _, err := fmt.Fprintf(w, "gridsched_replication_role{role=%q} %d\n", r, v); err != nil {
			return err
		}
	}
	if c == nil {
		return nil
	}
	local, leader := c.LocalLSN.Load(), c.LeaderLSN.Load()
	lag := leader - local
	if lag < 0 {
		lag = 0
	}
	for _, m := range []struct {
		name, kind string
		v          int64
	}{
		{"gridsched_replication_streams_active", "gauge", c.StreamsActive.Load()},
		{"gridsched_replication_frames_streamed_total", "counter", c.FramesStreamed.Load()},
		{"gridsched_replication_frames_applied_total", "counter", c.FramesApplied.Load()},
		{"gridsched_replication_snapshots_applied_total", "counter", c.SnapshotsApplied.Load()},
		{"gridsched_replication_reconnects_total", "counter", c.Reconnects.Load()},
		{"gridsched_replication_halted", "gauge", c.Halted.Load()},
		{"gridsched_replication_local_lsn", "gauge", local},
		{"gridsched_replication_leader_lsn", "gauge", leader},
		{"gridsched_replication_lag_lsn", "gauge", lag},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.kind, m.name, m.v); err != nil {
			return err
		}
	}
	return nil
}
