package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ServiceCounters are the gridschedd daemon's (internal/service) operational
// metrics: lock-free atomic counters fed from the request path and rendered
// at /metrics in the Prometheus text exposition format.
//
// Counters only ever grow; the Active*/OpenJobs fields are gauges.
type ServiceCounters struct {
	JobsSubmitted  atomic.Int64
	JobsCompleted  atomic.Int64
	Pulls          atomic.Int64
	Assignments    atomic.Int64
	Completions    atomic.Int64
	Failures       atomic.Int64
	Cancellations  atomic.Int64
	LeasesExpired  atomic.Int64
	WorkersExpired atomic.Int64
	Heartbeats     atomic.Int64
	StaleReports   atomic.Int64

	ActiveWorkers atomic.Int64
	ActiveLeases  atomic.Int64
	OpenJobs      atomic.Int64
}

// NewServiceCounters returns zeroed counters.
func NewServiceCounters() *ServiceCounters { return &ServiceCounters{} }

// WriteText renders every metric as Prometheus text exposition lines.
func (c *ServiceCounters) WriteText(w io.Writer) error {
	for _, m := range []struct {
		name, kind string
		v          int64
	}{
		{"gridsched_jobs_submitted_total", "counter", c.JobsSubmitted.Load()},
		{"gridsched_jobs_completed_total", "counter", c.JobsCompleted.Load()},
		{"gridsched_pulls_total", "counter", c.Pulls.Load()},
		{"gridsched_assignments_total", "counter", c.Assignments.Load()},
		{"gridsched_completions_total", "counter", c.Completions.Load()},
		{"gridsched_failures_total", "counter", c.Failures.Load()},
		{"gridsched_cancellations_total", "counter", c.Cancellations.Load()},
		{"gridsched_leases_expired_total", "counter", c.LeasesExpired.Load()},
		{"gridsched_workers_expired_total", "counter", c.WorkersExpired.Load()},
		{"gridsched_heartbeats_total", "counter", c.Heartbeats.Load()},
		{"gridsched_stale_reports_total", "counter", c.StaleReports.Load()},
		{"gridsched_active_workers", "gauge", c.ActiveWorkers.Load()},
		{"gridsched_active_leases", "gauge", c.ActiveLeases.Load()},
		{"gridsched_open_jobs", "gauge", c.OpenJobs.Load()},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.kind, m.name, m.v); err != nil {
			return err
		}
	}
	return nil
}
