package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ServiceCounters are the gridschedd daemon's (internal/service) operational
// metrics: lock-free atomic counters fed from the request path and rendered
// at /metrics in the Prometheus text exposition format.
//
// Counters only ever grow; the Active*/OpenJobs fields are gauges.
type ServiceCounters struct {
	JobsSubmitted  atomic.Int64
	JobsCompleted  atomic.Int64
	Pulls          atomic.Int64
	Assignments    atomic.Int64
	Completions    atomic.Int64
	Failures       atomic.Int64
	Cancellations  atomic.Int64
	LeasesExpired  atomic.Int64
	WorkersExpired atomic.Int64
	Heartbeats     atomic.Int64
	StaleReports   atomic.Int64

	// Straggler speculation. SpeculativeDispatches is durable (restored
	// from carry + resident jobs at recovery); wins/losses are
	// process-local observations about which replica reported first.
	SpeculativeDispatches atomic.Int64
	SpeculationWins       atomic.Int64
	SpeculationLosses     atomic.Int64

	ActiveWorkers atomic.Int64
	ActiveLeases  atomic.Int64
	OpenJobs      atomic.Int64
	// Shards is the configured lock-stripe count — a static gauge that
	// lets dashboards correlate dispatch latency with the concurrency
	// layout of the process that produced it.
	Shards atomic.Int64

	// Dispatch latency summary: time spent choosing + staging a task on a
	// successful pull, accumulated as a Prometheus-style summary (count +
	// sum) plus a running maximum.
	DispatchNanos    atomic.Int64
	DispatchCount    atomic.Int64
	DispatchMaxNanos atomic.Int64

	// Persistence metrics (zero when the service runs without -data-dir):
	// journal activity counters plus recovery and snapshot gauges.
	JournalRecords   atomic.Int64 // records appended to the write-ahead log
	JournalBytes     atomic.Int64 // frame bytes written to the log
	JournalFsyncs    atomic.Int64 // fsync(2) calls issued by the log writer
	Snapshots        atomic.Int64 // snapshots written
	SnapshotBytes    atomic.Int64 // size of the most recent snapshot
	ReplayRecords    atomic.Int64 // snapshot ledger + log records replayed at startup
	ReplayNanos      atomic.Int64 // time the startup replay took
	RecoveredExpired atomic.Int64 // in-flight leases expired by recovery

	// Stop-the-world snapshot pause (the lockAll hold across state
	// collection, marshal, file replacement, and log rotation): last
	// observed and running maximum, in nanoseconds. Rendered at /metrics
	// in milliseconds as gridsched_snapshot_pause_ms.
	SnapshotPauseLastNanos atomic.Int64
	SnapshotPauseMaxNanos  atomic.Int64
}

// ObserveDispatch folds one dispatch duration into the latency summary.
func (c *ServiceCounters) ObserveDispatch(nanos int64) {
	c.DispatchNanos.Add(nanos)
	c.DispatchCount.Add(1)
	for {
		cur := c.DispatchMaxNanos.Load()
		if nanos <= cur || c.DispatchMaxNanos.CompareAndSwap(cur, nanos) {
			return
		}
	}
}

// ObserveSnapshotPause records one stop-the-world snapshot pause.
func (c *ServiceCounters) ObserveSnapshotPause(nanos int64) {
	c.SnapshotPauseLastNanos.Store(nanos)
	for {
		cur := c.SnapshotPauseMaxNanos.Load()
		if nanos <= cur || c.SnapshotPauseMaxNanos.CompareAndSwap(cur, nanos) {
			return
		}
	}
}

// NewServiceCounters returns zeroed counters.
func NewServiceCounters() *ServiceCounters { return &ServiceCounters{} }

// WriteText renders every metric as Prometheus text exposition lines.
func (c *ServiceCounters) WriteText(w io.Writer) error {
	for _, m := range []struct {
		name, kind string
		v          int64
	}{
		{"gridsched_jobs_submitted_total", "counter", c.JobsSubmitted.Load()},
		{"gridsched_jobs_completed_total", "counter", c.JobsCompleted.Load()},
		{"gridsched_pulls_total", "counter", c.Pulls.Load()},
		{"gridsched_assignments_total", "counter", c.Assignments.Load()},
		{"gridsched_completions_total", "counter", c.Completions.Load()},
		{"gridsched_failures_total", "counter", c.Failures.Load()},
		{"gridsched_cancellations_total", "counter", c.Cancellations.Load()},
		{"gridsched_leases_expired_total", "counter", c.LeasesExpired.Load()},
		{"gridsched_workers_expired_total", "counter", c.WorkersExpired.Load()},
		{"gridsched_heartbeats_total", "counter", c.Heartbeats.Load()},
		{"gridsched_stale_reports_total", "counter", c.StaleReports.Load()},
		{"gridsched_speculative_dispatches_total", "counter", c.SpeculativeDispatches.Load()},
		{"gridsched_speculation_wins_total", "counter", c.SpeculationWins.Load()},
		{"gridsched_speculation_losses_total", "counter", c.SpeculationLosses.Load()},
		{"gridsched_active_workers", "gauge", c.ActiveWorkers.Load()},
		{"gridsched_active_leases", "gauge", c.ActiveLeases.Load()},
		{"gridsched_open_jobs", "gauge", c.OpenJobs.Load()},
		{"gridsched_shards", "gauge", c.Shards.Load()},
		{"gridsched_journal_records_total", "counter", c.JournalRecords.Load()},
		{"gridsched_journal_bytes_total", "counter", c.JournalBytes.Load()},
		{"gridsched_journal_fsyncs_total", "counter", c.JournalFsyncs.Load()},
		{"gridsched_snapshots_total", "counter", c.Snapshots.Load()},
		{"gridsched_snapshot_bytes", "gauge", c.SnapshotBytes.Load()},
		{"gridsched_replay_records", "gauge", c.ReplayRecords.Load()},
		{"gridsched_recovered_expired_leases", "gauge", c.RecoveredExpired.Load()},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.kind, m.name, m.v); err != nil {
			return err
		}
	}
	// Dispatch latency as a summary (seconds) plus max gauge.
	const nsPerSec = 1e9
	if _, err := fmt.Fprintf(w,
		"# TYPE gridsched_dispatch_latency_seconds summary\n"+
			"gridsched_dispatch_latency_seconds_sum %g\n"+
			"gridsched_dispatch_latency_seconds_count %d\n"+
			"# TYPE gridsched_dispatch_latency_max_seconds gauge\n"+
			"gridsched_dispatch_latency_max_seconds %g\n",
		float64(c.DispatchNanos.Load())/nsPerSec,
		c.DispatchCount.Load(),
		float64(c.DispatchMaxNanos.Load())/nsPerSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE gridsched_replay_seconds gauge\ngridsched_replay_seconds %g\n",
		float64(c.ReplayNanos.Load())/nsPerSec); err != nil {
		return err
	}
	const nsPerMs = 1e6
	_, err := fmt.Fprintf(w,
		"# TYPE gridsched_snapshot_pause_ms gauge\n"+
			"gridsched_snapshot_pause_ms{stat=\"last\"} %g\n"+
			"gridsched_snapshot_pause_ms{stat=\"max\"} %g\n",
		float64(c.SnapshotPauseLastNanos.Load())/nsPerMs,
		float64(c.SnapshotPauseMaxNanos.Load())/nsPerMs)
	return err
}
