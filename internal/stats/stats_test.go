package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stdev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7)
	if math.Abs(s.Stdev-want) > 1e-12 {
		t.Fatalf("stdev = %v, want %v", s.Stdev, want)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stdev != 0 || s.Median != 3 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {62.5, 35},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("accepted empty sample")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("accepted p < 0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("accepted p > 100")
	}
}

// Property: Min <= Median <= Max, Min <= Mean <= Max, stdev >= 0, and
// summarize is permutation-invariant.
func TestSummarizeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max || s.Min > s.Mean || s.Mean > s.Max || s.Stdev < 0 {
			return false
		}
		shuffled := append([]float64(nil), xs...)
		rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		s2 := Summarize(shuffled)
		return s2.Mean == s.Mean && s2.Median == s.Median && s2.Min == s.Min && s2.Max == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
