// Package stats provides the small summary-statistics toolkit the
// experiment harness uses to aggregate multi-seed runs (the paper averages
// every experiment over 5 topologies).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stdev  float64 `json:"stdev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stdev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
