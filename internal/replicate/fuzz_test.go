package replicate_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gridsched/internal/replicate"
)

// fuzzHandler records what Replay applies and re-asserts, independently
// of Replay's own checks, the invariants the follower's journal depends
// on: frames arrive exactly in sequence and snapshots never rewind.
type fuzzHandler struct {
	t    *testing.T
	last uint64
}

func (h *fuzzHandler) ApplyFrame(lsn uint64, payload []byte) error {
	if lsn != h.last+1 {
		h.t.Fatalf("ApplyFrame lsn %d after %d", lsn, h.last)
	}
	h.last = lsn
	return nil
}

func (h *fuzzHandler) ApplySnapshot(lsn uint64, data []byte) error {
	if lsn < h.last {
		h.t.Fatalf("ApplySnapshot lsn %d rewinds %d", lsn, h.last)
	}
	h.last = lsn
	return nil
}

func (h *fuzzHandler) Heartbeat(lastLSN uint64) {
	if lastLSN < h.last {
		h.t.Fatalf("heartbeat lsn %d behind applied %d passed through", lastLSN, h.last)
	}
}

// fuzzSeedStream encodes a valid message sequence (with an optional raw
// tail) to seed the corpus with structurally interesting inputs.
func fuzzSeedStream(f *testing.F, build func(e *replicate.Encoder) error, tail []byte) {
	f.Helper()
	var buf bytes.Buffer
	e := replicate.NewEncoder(&buf)
	if err := build(e); err != nil {
		f.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(append(buf.Bytes(), tail...), uint64(0))
}

// FuzzReplicationStream is the streaming-reader sibling of
// journal.FuzzReadFrame: arbitrary bytes as a replication stream, from an
// arbitrary resume position. The invariants under any input: no panic;
// the handler only ever sees contiguous frames and non-rewinding
// snapshots (the follower halts cleanly instead of writing a divergent
// log); and the error taxonomy is closed — a stream either ends cleanly
// (nil), diverges (ErrDiverged), or tears mid-message
// (io.ErrUnexpectedEOF).
func FuzzReplicationStream(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte("\n"), uint64(0))
	f.Add([]byte(`{"type":"frame","lsn":1,"size":1}`+"\nx"), uint64(0))
	f.Add([]byte(`{"type":"frame","lsn":9,"size":1}`+"\nx"), uint64(3))
	f.Add([]byte(`{"type":"heartbeat","lsn":0}`+"\n"), uint64(7))
	f.Add([]byte(`{"type":"snapshot","lsn":2,"size":2}`+"\n{}"), uint64(5))
	// Clean sequence: heartbeat, snapshot, contiguous frames.
	fuzzSeedStream(f, func(e *replicate.Encoder) error {
		if err := e.Heartbeat(4); err != nil {
			return err
		}
		if err := e.Snapshot(4, []byte(`{"lastLsn":4}`)); err != nil {
			return err
		}
		if err := e.Frame(5, []byte(`{"op":"submit"}`)); err != nil {
			return err
		}
		return e.Frame(6, []byte(`{"op":"dispatch"}`))
	}, nil)
	// Duplicate frame then a gap, plus a torn tail.
	fuzzSeedStream(f, func(e *replicate.Encoder) error {
		if err := e.Frame(1, []byte("a")); err != nil {
			return err
		}
		if err := e.Frame(1, []byte("a")); err != nil {
			return err
		}
		return e.Frame(3, []byte("c"))
	}, []byte(`{"type":"frame","lsn":4,"size":100}`+"\ntruncated"))

	f.Fuzz(func(t *testing.T, data []byte, from uint64) {
		h := &fuzzHandler{t: t, last: from}
		err := replicate.Replay(bytes.NewReader(data), from, h)
		switch {
		case err == nil:
		case errors.Is(err, replicate.ErrDiverged):
		case errors.Is(err, io.ErrUnexpectedEOF):
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
