package replicate_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched/internal/journal"
	"gridsched/internal/replicate"
)

// recorder is a Handler that records everything applied and re-checks
// the ordering guarantees Replay promises its callees. Mutex-guarded so
// the live-tail test can poll it from another goroutine under -race.
type recorder struct {
	t        *testing.T
	frameErr error

	mu         sync.Mutex
	last       uint64
	frames     []string
	snapshots  []uint64
	heartbeats []uint64
}

func (r *recorder) ApplyFrame(lsn uint64, payload []byte) error {
	if r.frameErr != nil {
		return r.frameErr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.t != nil && lsn != r.last+1 {
		r.t.Errorf("ApplyFrame lsn %d after %d — Replay broke its contiguity promise", lsn, r.last)
	}
	r.last = lsn
	r.frames = append(r.frames, string(payload))
	return nil
}

func (r *recorder) ApplySnapshot(lsn uint64, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.t != nil && lsn < r.last {
		r.t.Errorf("ApplySnapshot lsn %d rewinds %d", lsn, r.last)
	}
	r.last = lsn
	r.snapshots = append(r.snapshots, lsn)
	return nil
}

func (r *recorder) Heartbeat(lastLSN uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.heartbeats = append(r.heartbeats, lastLSN)
}

func (r *recorder) lastLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

func encodeStream(t *testing.T, build func(e *replicate.Encoder) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := replicate.NewEncoder(&buf)
	if err := build(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	payload := []byte(`{"op":"submit"}`)
	snap := []byte(`{"lastLsn":7}`)
	data := encodeStream(t, func(e *replicate.Encoder) error {
		if err := e.Heartbeat(7); err != nil {
			return err
		}
		if err := e.Snapshot(7, snap); err != nil {
			return err
		}
		return e.Frame(8, payload)
	})
	d := replicate.NewDecoder(bytes.NewReader(data))
	msg, err := d.Next()
	if err != nil || msg.Type != replicate.TypeHeartbeat || msg.LSN != 7 {
		t.Fatalf("heartbeat: %+v, %v", msg, err)
	}
	msg, err = d.Next()
	if err != nil || msg.Type != replicate.TypeSnapshot || msg.LSN != 7 || !bytes.Equal(msg.Payload, snap) {
		t.Fatalf("snapshot: %+v, %v", msg, err)
	}
	msg, err = d.Next()
	if err != nil || msg.Type != replicate.TypeFrame || msg.LSN != 8 || !bytes.Equal(msg.Payload, payload) {
		t.Fatalf("frame: %+v, %v", msg, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v (want io.EOF)", err)
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":          "not json\n",
		"unknown type":      `{"type":"gossip","lsn":1}` + "\n",
		"negative size":     `{"type":"frame","lsn":1,"size":-4}` + "\n",
		"oversized frame":   fmt.Sprintf(`{"type":"frame","lsn":1,"size":%d}`+"\n", int64(journal.MaxRecordLen)+1),
		"heartbeat w/ body": `{"type":"heartbeat","lsn":1,"size":3}` + "\nabc",
		"huge header":       `{"type":"frame","lsn":1,"pad":"` + strings.Repeat("x", 8192) + `"}` + "\n",
	}
	for name, in := range cases {
		d := replicate.NewDecoder(strings.NewReader(in))
		if _, err := d.Next(); !errors.Is(err, replicate.ErrDiverged) {
			t.Errorf("%s: %v (want ErrDiverged)", name, err)
		}
	}
	// A truncated body is a transport failure, not divergence: the
	// follower may reconnect and resume.
	d := replicate.NewDecoder(strings.NewReader(`{"type":"frame","lsn":1,"size":10}` + "\nshort"))
	if _, err := d.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: %v (want io.ErrUnexpectedEOF)", err)
	}
}

func TestReplayOrdering(t *testing.T) {
	t.Run("clean stream", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			if err := e.Frame(1, []byte("a")); err != nil {
				return err
			}
			if err := e.Frame(2, []byte("b")); err != nil {
				return err
			}
			return e.Heartbeat(2)
		})
		rec := &recorder{t: t}
		if err := replicate.Replay(bytes.NewReader(data), 0, rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.frames) != 2 || rec.frames[0] != "a" || rec.frames[1] != "b" {
			t.Fatalf("frames %v", rec.frames)
		}
		if len(rec.heartbeats) != 1 || rec.heartbeats[0] != 2 {
			t.Fatalf("heartbeats %v", rec.heartbeats)
		}
	})

	t.Run("duplicates skipped", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			for _, lsn := range []uint64{3, 4, 5} {
				if err := e.Frame(lsn, []byte{byte(lsn)}); err != nil {
					return err
				}
			}
			return nil
		})
		rec := &recorder{t: t, last: 4}
		if err := replicate.Replay(bytes.NewReader(data), 4, rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.frames) != 1 || rec.frames[0] != string([]byte{5}) {
			t.Fatalf("redelivered frames not skipped: applied %d frames", len(rec.frames))
		}
	})

	t.Run("lsn gap halts", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			if err := e.Frame(1, []byte("a")); err != nil {
				return err
			}
			return e.Frame(3, []byte("c"))
		})
		rec := &recorder{t: t}
		if err := replicate.Replay(bytes.NewReader(data), 0, rec); !errors.Is(err, replicate.ErrDiverged) {
			t.Fatalf("gap: %v (want ErrDiverged)", err)
		}
		if len(rec.frames) != 1 {
			t.Fatalf("applied %d frames past the gap", len(rec.frames))
		}
	})

	t.Run("snapshot rewind halts", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			return e.Snapshot(3, []byte("{}"))
		})
		if err := replicate.Replay(bytes.NewReader(data), 5, &recorder{}); !errors.Is(err, replicate.ErrDiverged) {
			t.Fatalf("snapshot rewind: %v (want ErrDiverged)", err)
		}
	})

	t.Run("leader behind follower halts", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			return e.Heartbeat(2)
		})
		if err := replicate.Replay(bytes.NewReader(data), 5, &recorder{}); !errors.Is(err, replicate.ErrDiverged) {
			t.Fatalf("leader behind: %v (want ErrDiverged)", err)
		}
	})

	t.Run("snapshot advances position", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			if err := e.Snapshot(10, []byte("{}")); err != nil {
				return err
			}
			return e.Frame(11, []byte("x"))
		})
		rec := &recorder{t: t}
		if err := replicate.Replay(bytes.NewReader(data), 0, rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.snapshots) != 1 || rec.snapshots[0] != 10 || len(rec.frames) != 1 || rec.last != 11 {
			t.Fatalf("snapshot catch-up: snapshots %v frames %v last %d", rec.snapshots, rec.frames, rec.last)
		}
	})

	t.Run("handler error stops replay", func(t *testing.T) {
		data := encodeStream(t, func(e *replicate.Encoder) error {
			if err := e.Frame(1, []byte("a")); err != nil {
				return err
			}
			return e.Frame(2, []byte("b"))
		})
		boom := errors.New("disk full")
		rec := &recorder{frameErr: boom}
		if err := replicate.Replay(bytes.NewReader(data), 0, rec); !errors.Is(err, boom) {
			t.Fatalf("handler error: %v", err)
		}
	})
}

// sourceEnv is one leader-side WAL plus a Source wired to it the way
// internal/service wires the live journal.
type sourceEnv struct {
	w    *journal.Writer
	src  *replicate.Source
	done chan struct{}
}

func newSourceEnv(t *testing.T) *sourceEnv {
	t.Helper()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	w, err := journal.OpenWriter(walPath, journal.SyncNever, 0, 0, 0, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	done := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-done:
		default:
			close(done)
		}
	})
	return &sourceEnv{
		w: w,
		src: &replicate.Source{
			WALPath:      walPath,
			SnapshotPath: filepath.Join(dir, "snapshot.json"),
			LastLSN:      w.LastLSN,
			Notify:       w.AppendNotify,
			Rotations:    w.Rotations,
			Done:         done,
			Heartbeat:    50 * time.Millisecond,
		},
		done: done,
	}
}

// TestSourceServesLiveTail: a follower connected at from=0 receives an
// initial heartbeat, the backlog, and then frames appended while the
// stream is live — in order, with the exact payload bytes.
func TestSourceServesLiveTail(t *testing.T) {
	env := newSourceEnv(t)
	for i := 0; i < 3; i++ {
		if _, err := env.w.Append([]byte{'a' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		err := env.src.Serve(ctx, pw, 0)
		pw.Close() // clean close: the follower sees EOF, as after leader shutdown
		serveErr <- err
	}()

	rec := &recorder{t: t}
	replayErr := make(chan error, 1)
	go func() { replayErr <- replicate.Replay(pr, 0, rec) }()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (at lsn %d)", what, rec.lastLSN())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(func() bool { return rec.lastLSN() >= 3 }, "backlog")

	if _, err := env.w.Append([]byte("late")); err != nil {
		t.Fatal(err)
	}
	waitFor(func() bool { return rec.lastLSN() >= 4 }, "live append")

	close(env.done)
	if err := <-serveErr; err == nil {
		t.Fatal("Serve returned nil after shutdown")
	}
	if err := <-replayErr; err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
		t.Fatalf("replay end: %v", err)
	}
	want := []string{"a", "b", "c", "late"}
	if len(rec.frames) != len(want) {
		t.Fatalf("frames %q, want %q", rec.frames, want)
	}
	for i := range want {
		if rec.frames[i] != want[i] {
			t.Fatalf("frame %d: %q, want %q", i, rec.frames[i], want[i])
		}
	}
	if len(rec.heartbeats) == 0 {
		t.Fatal("no heartbeat received")
	}
}

// TestSourceSnapshotCatchUp: when the snapshot already covers the
// requested position, the leader ships it first and resumes framing past
// it — the compaction-resilient path a long-offline follower depends on.
func TestSourceSnapshotCatchUp(t *testing.T) {
	env := newSourceEnv(t)
	// Leader state: snapshot covering LSNs 1..5, live WAL holding 6.
	snap := []byte(`{"lastLsn":5,"version":1}`)
	if err := journal.WriteFileAtomic(env.src.SnapshotPath, snap); err != nil {
		t.Fatal(err)
	}
	// Seed the writer's LSN sequence at 5 so the next append is 6.
	env.w.Close()
	w, err := journal.OpenWriter(env.src.WALPath, journal.SyncNever, 0, 5, 0, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	env.src.LastLSN, env.src.Notify, env.src.Rotations = w.LastLSN, w.AppendNotify, w.Rotations
	if lsn, err := w.Append([]byte("six")); err != nil || lsn != 6 {
		t.Fatalf("append: lsn %d err %v", lsn, err)
	}

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		err := env.src.Serve(ctx, pw, 0)
		pw.CloseWithError(err)
	}()

	d := replicate.NewDecoder(pr)
	msg, err := d.Next()
	if err != nil || msg.Type != replicate.TypeHeartbeat {
		t.Fatalf("first message: %+v, %v (want heartbeat)", msg, err)
	}
	msg, err = d.Next()
	if err != nil || msg.Type != replicate.TypeSnapshot || msg.LSN != 5 || !bytes.Equal(msg.Payload, snap) {
		t.Fatalf("second message: %+v, %v (want snapshot@5)", msg, err)
	}
	msg, err = d.Next()
	if err != nil || msg.Type != replicate.TypeFrame || msg.LSN != 6 || string(msg.Payload) != "six" {
		t.Fatalf("third message: %+v, %v (want frame@6)", msg, err)
	}
	close(env.done)
}

// TestSourceResumesFrom: a follower reconnecting with from=N gets N+1
// onward, never a redelivered prefix.
func TestSourceResumesFrom(t *testing.T) {
	env := newSourceEnv(t)
	for i := 0; i < 5; i++ {
		if _, err := env.w.Append([]byte{'a' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		err := env.src.Serve(ctx, pw, 3)
		pw.CloseWithError(err)
	}()
	d := replicate.NewDecoder(pr)
	msg, err := d.Next()
	if err != nil || msg.Type != replicate.TypeHeartbeat {
		t.Fatalf("first message: %+v, %v", msg, err)
	}
	for want := uint64(4); want <= 5; want++ {
		msg, err = d.Next()
		if err != nil || msg.Type != replicate.TypeFrame || msg.LSN != want {
			t.Fatalf("resume frame: %+v, %v (want frame@%d)", msg, err, want)
		}
	}
	close(env.done)
}
