package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"time"

	"gridsched/internal/journal"
)

// Source streams a leader's WAL to one follower connection. The fields
// point at the live journal owned by internal/service; Serve never takes
// a service lock — it reads the WAL file and the snapshot file the same
// way recovery would, synchronized only by the writer's append
// notifications and rotation counter.
type Source struct {
	// WALPath and SnapshotPath locate the leader's live journal.
	WALPath      string
	SnapshotPath string
	// LastLSN, Notify and Rotations come from the live journal.Writer.
	LastLSN   func() uint64
	Notify    func() <-chan struct{}
	Rotations func() uint64
	// Done, when closed, ends the stream (service shutdown). Optional.
	Done <-chan struct{}
	// Heartbeat is the idle beacon cadence; 0 picks 1s.
	Heartbeat time.Duration
	// OnFrame, if set, is called once per streamed frame (metrics).
	OnFrame func()
}

// snapshotHeader is the one field of the service snapshot the streamer
// needs: the LSN it covers.
type snapshotHeader struct {
	LastLSN uint64 `json:"lastLsn"`
}

// readSnapshot loads the current snapshot file, if any, and the LSN it
// covers. The file is replaced atomically (rename), so a read sees a
// complete old or new snapshot, never a torn one.
func readSnapshot(path string) (lsn uint64, data []byte, ok bool, err error) {
	data, err = os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	var h snapshotHeader
	if err := json.Unmarshal(data, &h); err != nil {
		return 0, nil, false, err
	}
	return h.LastLSN, data, true, nil
}

// Serve streams frames with LSN > from to w until ctx or Done ends, or a
// write fails (follower gone). When the WAL tail no longer reaches the
// requested position — a snapshot rotation compacted it — the current
// snapshot is shipped instead and framing resumes past it.
func (s *Source) Serve(ctx context.Context, w io.Writer, from uint64) error {
	enc := NewEncoder(w)
	flush := func() error {
		if err := enc.Flush(); err != nil {
			return err
		}
		if f, ok := w.(interface{ Flush() }); ok {
			f.Flush()
		}
		return nil
	}
	hb := s.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	tick := time.NewTicker(hb)
	defer tick.Stop()

	// Immediate heartbeat: the follower learns the leader's position (and
	// that the stream is live) before the first frame.
	if err := enc.Heartbeat(s.LastLSN()); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	next := from + 1
	for {
		if err := s.interrupted(ctx); err != nil {
			return err
		}
		// Snapshot catch-up: whenever the snapshot already covers the
		// position we owe, it is both the only complete source (the tail
		// may have rotated) and the cheapest one.
		snapLSN, data, ok, err := readSnapshot(s.SnapshotPath)
		if err != nil {
			return err
		}
		if ok && snapLSN >= next {
			if err := enc.Snapshot(snapLSN, data); err != nil {
				return err
			}
			if err := flush(); err != nil {
				return err
			}
			next = snapLSN + 1
			continue
		}
		// Subscribe before opening the tail so an append between "no WAL
		// yet" and the wait cannot be missed.
		notify := s.Notify()
		tr, err := journal.OpenTail(s.WALPath, next-1)
		if err != nil {
			if !os.IsNotExist(err) {
				return err
			}
			if err := s.idle(ctx, enc, flush, notify, tick.C); err != nil {
				return err
			}
			continue
		}
		err = s.followTail(ctx, enc, flush, tr, &next, tick.C)
		_ = tr.Close()
		if err != nil {
			return err
		}
		// nil: rotation or gap — loop and re-resolve via the snapshot.
	}
}

// followTail streams consecutive frames from tr until rotation (or an
// LSN gap) invalidates it — returning nil so the caller re-resolves —
// or a real error ends the stream.
func (s *Source) followTail(ctx context.Context, enc *Encoder, flush func() error, tr *journal.TailReader, next *uint64, tick <-chan time.Time) error {
	epoch := s.Rotations()
	for {
		if err := s.interrupted(ctx); err != nil {
			return err
		}
		if s.Rotations() != epoch {
			return nil
		}
		notify := s.Notify()
		lsn, payload, err := tr.Next()
		switch {
		case err == nil:
			if lsn != *next {
				// The tail starts past the position we owe: it was
				// compacted; the snapshot has it.
				return nil
			}
			if err := enc.Frame(lsn, payload); err != nil {
				return err
			}
			*next = lsn + 1
			if s.OnFrame != nil {
				s.OnFrame()
			}
		case errors.Is(err, journal.ErrNoFrame):
			// Drained: push what we buffered, then wait for more.
			if err := flush(); err != nil {
				return err
			}
			if err := s.idle(ctx, enc, flush, notify, tick); err != nil {
				return err
			}
		case errors.Is(err, journal.ErrRotated):
			return nil
		default:
			return err
		}
	}
}

// idle waits for an append, a heartbeat tick, or shutdown.
func (s *Source) idle(ctx context.Context, enc *Encoder, flush func() error, notify <-chan struct{}, tick <-chan time.Time) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done():
		return errStreamDone
	case <-notify:
		return nil
	case <-tick:
		if err := enc.Heartbeat(s.LastLSN()); err != nil {
			return err
		}
		return flush()
	}
}

var errStreamDone = errors.New("replicate: source shut down")

func (s *Source) done() <-chan struct{} { return s.Done }

func (s *Source) interrupted(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-s.done():
		return errStreamDone
	default:
		return nil
	}
}
