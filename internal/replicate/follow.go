package replicate

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler consumes one replication stream. Implementations persist what
// they are given; Replay has already enforced ordering when a method is
// called.
type Handler interface {
	// ApplySnapshot replaces the follower's state with a full snapshot
	// covering everything up to and including lsn.
	ApplySnapshot(lsn uint64, data []byte) error
	// ApplyFrame appends one journal record payload; lsn is guaranteed to
	// be exactly one past the last applied position.
	ApplyFrame(lsn uint64, payload []byte) error
	// Heartbeat reports the leader's last LSN (lag = leader - local).
	Heartbeat(lastLSN uint64)
}

// Replay decodes a replication stream and applies it through h, starting
// from last (the highest LSN the follower already holds). It is the
// divergence firewall: frames must arrive exactly in sequence, snapshots
// may never travel backwards, and a leader announcing less history than
// the follower holds is split-brain — each violation halts the stream
// with ErrDiverged before anything is applied out of order. Duplicate
// frames at or below the applied position (redelivery after reconnect)
// are skipped. A clean EOF returns nil.
func Replay(r io.Reader, last uint64, h Handler) error {
	dec := NewDecoder(r)
	for {
		msg, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch msg.Type {
		case TypeHeartbeat:
			if msg.LSN < last {
				return fmt.Errorf("%w: leader reports lsn %d behind follower %d", ErrDiverged, msg.LSN, last)
			}
			h.Heartbeat(msg.LSN)
		case TypeSnapshot:
			if msg.LSN < last {
				return fmt.Errorf("%w: snapshot at lsn %d would rewind follower at %d", ErrDiverged, msg.LSN, last)
			}
			if err := h.ApplySnapshot(msg.LSN, msg.Payload); err != nil {
				return err
			}
			last = msg.LSN
		case TypeFrame:
			if msg.LSN <= last {
				continue // redelivery
			}
			if msg.LSN != last+1 {
				return fmt.Errorf("%w: frame lsn %d after %d (gap)", ErrDiverged, msg.LSN, last)
			}
			if err := h.ApplyFrame(msg.LSN, msg.Payload); err != nil {
				return err
			}
			last = msg.LSN
		}
	}
}

// StreamPath is the leader's replication endpoint.
const StreamPath = "/v1/replication/stream"

// Follow opens one streaming connection to the leader and replays it
// through h until the connection ends. from is the last LSN the follower
// holds; token, when non-empty, is sent as a bearer token (the endpoint
// is admin-gated when the leader runs with -auth-tokens). hc must have
// no client-level timeout — the stream is long-lived; cancel via ctx.
// The caller owns the reconnect policy.
func Follow(ctx context.Context, hc *http.Client, leaderURL, token string, from uint64, h Handler) error {
	u := strings.TrimSuffix(leaderURL, "/") + StreamPath + "?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replicate: leader refused stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return Replay(resp.Body, from, h)
}
