// Package replicate implements hot-standby WAL replication for
// gridschedd: a leader streams journal frames to followers over one
// long-lived chunked HTTP response, and a follower persists them through
// its own journal.Writer so that promotion is nothing more than the
// recovery path the single-node gauntlet already proves bit-exact.
//
// # Wire format
//
// The stream is a sequence of messages, each a single JSON header line
// terminated by '\n', optionally followed by exactly Size raw bytes:
//
//	{"type":"snapshot","lsn":<lastLSN>,"size":<n>}\n<n snapshot bytes>
//	{"type":"frame","lsn":<lsn>,"size":<n>}\n<n record-payload bytes>
//	{"type":"heartbeat","lsn":<leader lastLSN>}\n
//
// Frame payloads are the journal record payloads — NOT the on-disk frame
// encoding; the follower's own Writer reframes them, which is what makes
// the LSN handshake airtight: the follower's writer assigns exactly the
// streamed LSN or the follower halts.
//
// # Resumption and catch-up
//
// A follower connects with ?from=<lsn>, the last LSN it holds. The
// leader serves lsn+1, lsn+2, … from its live WAL via a tail-following
// reader (journal.TailReader). When the requested position was compacted
// away by snapshot rotation, the leader ships its current snapshot file
// first ("snapshot" message, lsn = the LSN the snapshot covers) and
// resumes framing from there. Heartbeats flow whenever the stream is
// idle so the follower can measure lag and detect leader death.
//
// # Safety
//
// The follower applies a frame only when its LSN is exactly one past the
// last applied; a gap or regressing snapshot is a protocol violation and
// the stream halts (ErrDiverged) rather than writing a log that disagrees
// with the leader's. Duplicated frames at or below the applied position
// (redelivery after reconnect) are skipped. See docs/REPLICATION.md.
package replicate

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gridsched/internal/journal"
)

// Message types.
const (
	TypeSnapshot  = "snapshot"
	TypeFrame     = "frame"
	TypeHeartbeat = "heartbeat"
)

// MaxSnapshotLen bounds a streamed snapshot body.
const MaxSnapshotLen = 1 << 30

// maxHeaderLine bounds one JSON header line.
const maxHeaderLine = 4096

// ErrDiverged marks a protocol violation that could make the follower's
// log disagree with the leader's — an LSN gap, a regressing snapshot, a
// malformed header. The follower halts the stream instead of applying.
var ErrDiverged = errors.New("replicate: stream diverged")

// Header is the JSON header line of one stream message.
type Header struct {
	Type string `json:"type"`
	LSN  uint64 `json:"lsn"`
	Size int64  `json:"size,omitempty"`
}

// Msg is one decoded stream message. Payload aliases a reused buffer:
// valid only until the next Decoder.Next call.
type Msg struct {
	Type    string
	LSN     uint64
	Payload []byte
}

// Encoder writes stream messages. Not safe for concurrent use.
type Encoder struct {
	w  *bufio.Writer
	hd []byte
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 32<<10)}
}

func (e *Encoder) header(h Header) error {
	b, err := json.Marshal(h)
	if err != nil {
		return err
	}
	e.hd = append(e.hd[:0], b...)
	e.hd = append(e.hd, '\n')
	_, err = e.w.Write(e.hd)
	return err
}

// Frame writes one journal frame.
func (e *Encoder) Frame(lsn uint64, payload []byte) error {
	if err := e.header(Header{Type: TypeFrame, LSN: lsn, Size: int64(len(payload))}); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// Snapshot writes a snapshot catch-up message; lsn is the LSN the
// snapshot covers.
func (e *Encoder) Snapshot(lsn uint64, data []byte) error {
	if err := e.header(Header{Type: TypeSnapshot, LSN: lsn, Size: int64(len(data))}); err != nil {
		return err
	}
	_, err := e.w.Write(data)
	return err
}

// Heartbeat writes a liveness/lag beacon carrying the leader's last LSN.
func (e *Encoder) Heartbeat(lastLSN uint64) error {
	return e.header(Header{Type: TypeHeartbeat, LSN: lastLSN})
}

// Flush pushes buffered bytes to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Decoder reads stream messages. Not safe for concurrent use.
type Decoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 32<<10)}
}

// Next decodes one message. io.EOF at a message boundary means the
// stream ended cleanly; every malformed input maps to ErrDiverged.
func (d *Decoder) Next() (Msg, error) {
	line, err := d.r.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) == 0 {
			return Msg{}, io.EOF
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			return Msg{}, fmt.Errorf("%w: header line exceeds %d bytes", ErrDiverged, maxHeaderLine)
		}
		if errors.Is(err, io.EOF) {
			return Msg{}, io.ErrUnexpectedEOF
		}
		return Msg{}, err
	}
	if len(line) > maxHeaderLine {
		return Msg{}, fmt.Errorf("%w: header line exceeds %d bytes", ErrDiverged, maxHeaderLine)
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Msg{}, fmt.Errorf("%w: bad header: %v", ErrDiverged, err)
	}
	var limit int64
	switch h.Type {
	case TypeFrame:
		limit = journal.MaxRecordLen
	case TypeSnapshot:
		limit = MaxSnapshotLen
	case TypeHeartbeat:
		if h.Size != 0 {
			return Msg{}, fmt.Errorf("%w: heartbeat with body", ErrDiverged)
		}
		return Msg{Type: h.Type, LSN: h.LSN}, nil
	default:
		return Msg{}, fmt.Errorf("%w: unknown message type %q", ErrDiverged, h.Type)
	}
	if h.Size < 0 || h.Size > limit {
		return Msg{}, fmt.Errorf("%w: %s size %d out of bounds", ErrDiverged, h.Type, h.Size)
	}
	if int64(cap(d.buf)) < h.Size {
		d.buf = make([]byte, h.Size)
	}
	d.buf = d.buf[:h.Size]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Msg{}, io.ErrUnexpectedEOF
		}
		return Msg{}, err
	}
	return Msg{Type: h.Type, LSN: h.LSN, Payload: d.buf}, nil
}
