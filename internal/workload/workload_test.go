package workload

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeStatsBasics(t *testing.T) {
	w := &Workload{
		Name:     "tiny",
		NumFiles: 4,
		Tasks: []Task{
			{ID: 0, Files: []FileID{0, 1}},
			{ID: 1, Files: []FileID{1, 2, 3}},
			{ID: 2, Files: []FileID{1}},
		},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(w)
	if s.Tasks != 3 || s.TotalFiles != 4 || s.MinFilesPerTask != 1 || s.MaxFilesPerTask != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalReferences != 6 || s.AvgFilesPerTask != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := func() *Workload {
		return &Workload{
			Name:     "w",
			NumFiles: 3,
			Tasks:    []Task{{ID: 0, Files: []FileID{0, 2}}},
		}
	}
	cases := map[string]func(*Workload){
		"zero files":        func(w *Workload) { w.NumFiles = 0 },
		"wrong task id":     func(w *Workload) { w.Tasks[0].ID = 5 },
		"empty file list":   func(w *Workload) { w.Tasks[0].Files = nil },
		"file out of range": func(w *Workload) { w.Tasks[0].Files = []FileID{7} },
		"negative file":     func(w *Workload) { w.Tasks[0].Files = []FileID{-1} },
		"duplicate file":    func(w *Workload) { w.Tasks[0].Files = []FileID{1, 1} },
	}
	for name, corrupt := range cases {
		w := good()
		corrupt(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt workload", name)
		}
	}
}

func TestReferenceCDFMonotoneAndAnchored(t *testing.T) {
	w := &Workload{
		Name:     "cdf",
		NumFiles: 3,
		Tasks: []Task{
			{ID: 0, Files: []FileID{0, 1}},
			{ID: 1, Files: []FileID{0}},
			{ID: 2, Files: []FileID{0}},
		},
	}
	cdf := ReferenceCDF(w)
	// refs: file0=3, file1=1; points: (1, 100%), (3, 50%).
	if len(cdf) != 2 {
		t.Fatalf("cdf = %+v", cdf)
	}
	if cdf[0].MinRefs != 1 || cdf[0].Percent != 100 {
		t.Fatalf("cdf[0] = %+v", cdf[0])
	}
	if cdf[1].MinRefs != 3 || cdf[1].Percent != 50 {
		t.Fatalf("cdf[1] = %+v", cdf[1])
	}
	if got := PercentWithAtLeast(w, 2); got != 50 {
		t.Fatalf("PercentWithAtLeast(2) = %v, want 50", got)
	}
	if got := PercentWithAtLeast(w, 4); got != 0 {
		t.Fatalf("PercentWithAtLeast(4) = %v, want 0", got)
	}
}

// TestCoaddMatchesTable2 pins the canonical trace to the paper's Table 2 /
// Figure 3 characteristics (within the tolerance a synthetic regeneration
// can promise; exact paper-vs-measured numbers live in EXPERIMENTS.md).
func TestCoaddMatchesTable2(t *testing.T) {
	w, err := GenerateCoadd(CoaddSmallConfig(DefaultCoaddSeed))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(w)
	if s.Tasks != 6000 {
		t.Fatalf("tasks = %d", s.Tasks)
	}
	if s.TotalFiles < 51000 || s.TotalFiles > 56000 {
		t.Fatalf("total files = %d, want ~53390", s.TotalFiles)
	}
	if s.AvgFilesPerTask < 74 || s.AvgFilesPerTask > 83 {
		t.Fatalf("avg files/task = %v, want ~78.4", s.AvgFilesPerTask)
	}
	if s.MinFilesPerTask < 10 || s.MinFilesPerTask > 50 {
		t.Fatalf("min files/task = %d, want ~36", s.MinFilesPerTask)
	}
	if s.MaxFilesPerTask < 95 || s.MaxFilesPerTask > 160 {
		t.Fatalf("max files/task = %d, want ~101", s.MaxFilesPerTask)
	}
	pct := PercentWithAtLeast(w, 6)
	if pct < 78 || pct > 92 {
		t.Fatalf("%%files with >=6 refs = %v, want ~85", pct)
	}
}

func TestCoaddFullScaleMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale trace generation in -short mode")
	}
	w, err := GenerateCoadd(CoaddFullConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(w)
	if s.Tasks != 44000 {
		t.Fatalf("tasks = %d", s.Tasks)
	}
	if s.TotalFiles < 560000 || s.TotalFiles > 615000 {
		t.Fatalf("total files = %d, want ~588900", s.TotalFiles)
	}
	if s.AvgFilesPerTask < 117 || s.AvgFilesPerTask > 131 {
		t.Fatalf("avg files/task = %v, want ~124", s.AvgFilesPerTask)
	}
	pct := PercentWithAtLeast(w, 6)
	if pct < 83 || pct > 96 {
		t.Fatalf("%%files with >=6 refs = %v, want ~90", pct)
	}
}

func TestCoaddDeterministic(t *testing.T) {
	cfg := CoaddSmallConfig(7)
	cfg.Tasks = 500
	a, err := GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFiles != b.NumFiles || len(a.Tasks) != len(b.Tasks) {
		t.Fatal("shape differs between identical generations")
	}
	for i := range a.Tasks {
		af, bf := a.Tasks[i].Files, b.Tasks[i].Files
		if len(af) != len(bf) {
			t.Fatalf("task %d file counts differ", i)
		}
		for j := range af {
			if af[j] != bf[j] {
				t.Fatalf("task %d file %d differs", i, j)
			}
		}
	}
}

// TestCoaddSpatialLocality verifies the structural property the schedulers
// exploit: adjacent tasks share most inputs, distant tasks share none.
func TestCoaddSpatialLocality(t *testing.T) {
	cfg := CoaddSmallConfig(DefaultCoaddSeed)
	cfg.Tasks = 2000
	w, err := GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overlap := func(a, b Task) int {
		set := make(map[FileID]struct{}, len(a.Files))
		for _, f := range a.Files {
			set[f] = struct{}{}
		}
		n := 0
		for _, f := range b.Files {
			if _, ok := set[f]; ok {
				n++
			}
		}
		return n
	}
	var nearTotal, nearShared, farShared int
	for i := 100; i < 1000; i += 50 {
		nearTotal += len(w.Tasks[i].Files)
		nearShared += overlap(w.Tasks[i], w.Tasks[i+1])
		farShared += overlap(w.Tasks[i], w.Tasks[i+900])
	}
	if float64(nearShared) < 0.5*float64(nearTotal) {
		t.Fatalf("adjacent tasks share %d of %d files, want > 50%%", nearShared, nearTotal)
	}
	if farShared != 0 {
		t.Fatalf("tasks 900 strides apart share %d files, want 0", farShared)
	}
}

func TestCoaddValidateRejects(t *testing.T) {
	bad := []func(*CoaddConfig){
		func(c *CoaddConfig) { c.Tasks = 0 },
		func(c *CoaddConfig) { c.Runs = 0 },
		func(c *CoaddConfig) { c.TaskStride = 0 },
		func(c *CoaddConfig) { c.MinWindow = 0 },
		func(c *CoaddConfig) { c.MaxWindow = c.MinWindow - 1 },
		func(c *CoaddConfig) { c.Coverage = 0 },
		func(c *CoaddConfig) { c.Coverage = 1.5 },
		func(c *CoaddConfig) { c.CoverSegment = 0 },
		func(c *CoaddConfig) { c.DropRange = [2]float64{0.5, 0.2} },
		func(c *CoaddConfig) { c.DropRange = [2]float64{-0.1, 0.2} },
	}
	for i, corrupt := range bad {
		cfg := CoaddSmallConfig(1)
		corrupt(&cfg)
		if _, err := GenerateCoadd(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestZipfGenerator(t *testing.T) {
	cfg := ZipfConfig{Seed: 1, Tasks: 500, Files: 2000, MinFiles: 10, MaxFiles: 30, S: 1.5}
	w, err := GenerateZipf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(w)
	if s.MinFilesPerTask < 10 || s.MaxFilesPerTask > 30 {
		t.Fatalf("files/task range [%d,%d] outside config", s.MinFilesPerTask, s.MaxFilesPerTask)
	}
	// Zipf: the most popular file must be referenced far more than average.
	refs := make(map[FileID]int)
	for _, task := range w.Tasks {
		for _, f := range task.Files {
			refs[f]++
		}
	}
	max := 0
	for _, r := range refs {
		if r > max {
			max = r
		}
	}
	if float64(max) < 3*s.AvgRefsPerFile {
		t.Fatalf("max refs %d not skewed vs avg %v", max, s.AvgRefsPerFile)
	}
}

func TestGeometricGenerator(t *testing.T) {
	cfg := GeometricConfig{Seed: 1, Tasks: 400, Datasets: 10, FilesPerSet: 20, PrivateFiles: 2, P: 0.4}
	w, err := GenerateGeometric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every task: one full dataset + its private files.
	for _, task := range w.Tasks {
		if len(task.Files) != 22 {
			t.Fatalf("task %d has %d files, want 22", task.ID, len(task.Files))
		}
	}
	// Dataset 0 must be the most popular (geometric decay).
	setRefs := make([]int, cfg.Datasets)
	for _, task := range w.Tasks {
		setRefs[int(task.Files[0])/cfg.FilesPerSet]++
	}
	for d := 1; d < cfg.Datasets; d++ {
		if setRefs[d] > setRefs[0] {
			t.Fatalf("dataset %d more popular than dataset 0: %v", d, setRefs)
		}
	}
}

func TestUniformGenerator(t *testing.T) {
	cfg := UniformConfig{Seed: 1, Tasks: 300, Files: 1000, MinFiles: 5, MaxFiles: 5}
	w, err := GenerateUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, task := range w.Tasks {
		if len(task.Files) != 5 {
			t.Fatalf("task %d has %d files, want exactly 5", task.ID, len(task.Files))
		}
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	if _, err := GenerateZipf(ZipfConfig{Tasks: 1, Files: 10, MinFiles: 5, MaxFiles: 3, S: 2}); err == nil {
		t.Error("zipf accepted Max < Min")
	}
	if _, err := GenerateZipf(ZipfConfig{Tasks: 1, Files: 10, MinFiles: 1, MaxFiles: 3, S: 1}); err == nil {
		t.Error("zipf accepted S <= 1")
	}
	if _, err := GenerateGeometric(GeometricConfig{Tasks: 1, Datasets: 1, FilesPerSet: 1, P: 1.5}); err == nil {
		t.Error("geometric accepted P > 1")
	}
	if _, err := GenerateUniform(UniformConfig{Tasks: 1, Files: 2, MinFiles: 1, MaxFiles: 3}); err == nil {
		t.Error("uniform accepted MaxFiles > Files")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := CoaddSmallConfig(5)
	cfg.Tasks = 200
	w, err := GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || got.NumFiles != w.NumFiles || len(got.Tasks) != len(w.Tasks) {
		t.Fatalf("round trip changed shape: %+v", got)
	}
	for i := range w.Tasks {
		if len(got.Tasks[i].Files) != len(w.Tasks[i].Files) {
			t.Fatalf("task %d files differ after round trip", i)
		}
	}
}

func TestReadRejectsInvalidTrace(t *testing.T) {
	if _, err := Read(bytes.NewBufferString(`{"name":"x","numFiles":0,"tasks":[]}`)); err == nil {
		t.Fatal("accepted trace with zero files")
	}
	if _, err := Read(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}

// Property: every generated coadd workload is valid and its reference CDF
// is monotone non-increasing in percent as MinRefs grows.
func TestCoaddPropertyValidAndMonotone(t *testing.T) {
	f := func(seed int64, tasks uint16) bool {
		cfg := CoaddSmallConfig(seed)
		cfg.Tasks = 50 + int(tasks)%500
		w, err := GenerateCoadd(cfg)
		if err != nil {
			return false
		}
		if err := w.Validate(); err != nil {
			return false
		}
		cdf := ReferenceCDF(w)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].MinRefs <= cdf[i-1].MinRefs || cdf[i].Percent > cdf[i-1].Percent {
				return false
			}
		}
		return len(cdf) > 0 && cdf[0].Percent == 100
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const mean = 50.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := geometric(rng, mean)
		if v < 0 {
			t.Fatalf("negative geometric draw %d", v)
		}
		sum += float64(v)
	}
	got := sum / n
	if got < mean*0.9 || got > mean*1.1 {
		t.Fatalf("geometric mean = %v, want ~%v", got, mean)
	}
}
