package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// CoaddConfig parameterizes the synthetic Coadd generator.
//
// The real Coadd (SDSS southern-hemisphere coaddition) stacks images from
// many imaging runs over a 1-D sky stripe: every output tile (task) needs
// every archived image that overlaps its sky window, from every run that
// covered that part of the stripe. The trace itself is not published, so we
// regenerate the structure: a unit-length image grid per run, runs with
// contiguous coverage gaps, and tasks with jittered window widths marching
// along the stripe. This reproduces the two properties the schedulers
// exploit — nearby tasks share most input files, and the sharing decays
// with task distance — and is calibrated to the paper's Table 2/Figure 3
// statistics (see CoaddSmallConfig and CoaddFullConfig).
type CoaddConfig struct {
	Seed  int64 `json:"seed"`
	Tasks int   `json:"tasks"`

	Runs       int     `json:"runs"`       // imaging runs (epochs) over the stripe
	TaskStride float64 `json:"taskStride"` // distance between task centers, in image widths
	// Task window width is drawn uniformly from [MinWindow, MaxWindow]
	// image widths.
	MinWindow float64 `json:"minWindow"`
	MaxWindow float64 `json:"maxWindow"`
	// Coverage is the long-run fraction of the stripe each run covers;
	// CoverSegment is the mean length (in images) of a covered stretch.
	Coverage     float64 `json:"coverage"`
	CoverSegment float64 `json:"coverSegment"`
	// Each run r gets a "badness" drawn uniformly from DropRange; every
	// task independently drops run r's images with that probability
	// (coaddition quality cuts). This is what gives the reference
	// distribution its low-count tail (paper Figure 3).
	DropRange [2]float64 `json:"dropRange"`
}

// DefaultCoaddSeed is the canonical seed for the paper-matching trace:
// CoaddSmallConfig(DefaultCoaddSeed) yields 53,509 distinct files (paper:
// 53,390), 79.2 files/task mean (78.4), and 85.4% of files referenced by
// >= 6 tasks (~85%). Experiments use this seed unless overridden.
const DefaultCoaddSeed = 3

// CoaddSmallConfig is calibrated to the paper's evaluation workload: the
// first 6,000 tasks of Coadd (Table 2: 53,390 files, 36..101 files per
// task, mean 78.4; Figure 3: ~85% of files referenced by >= 6 tasks).
func CoaddSmallConfig(seed int64) CoaddConfig {
	return CoaddConfig{
		Seed:         seed,
		Tasks:        6000,
		Runs:         19,
		TaskStride:   0.493,
		MinWindow:    4.8,
		MaxWindow:    6.8,
		Coverage:     0.96,
		CoverSegment: 120,
		DropRange:    [2]float64{0, 0.65},
	}
}

// CoaddFullConfig is calibrated to the full application (§2.1: 44,000
// tasks, 588,900 files, 36..181 files per task, mean ~124, ~90% of files
// referenced by >= 6 tasks).
func CoaddFullConfig(seed int64) CoaddConfig {
	return CoaddConfig{
		Seed:         seed,
		Tasks:        44000,
		Runs:         29,
		TaskStride:   0.489,
		MinWindow:    4.5,
		MaxWindow:    6.5,
		Coverage:     0.95,
		CoverSegment: 120,
		DropRange:    [2]float64{0, 0.6},
	}
}

// Validate checks the configuration.
func (c CoaddConfig) Validate() error {
	switch {
	case c.Tasks < 1:
		return fmt.Errorf("coadd: Tasks = %d", c.Tasks)
	case c.Runs < 1:
		return fmt.Errorf("coadd: Runs = %d", c.Runs)
	case c.TaskStride <= 0:
		return fmt.Errorf("coadd: TaskStride = %v", c.TaskStride)
	case c.MinWindow <= 0 || c.MaxWindow < c.MinWindow:
		return fmt.Errorf("coadd: window range [%v, %v]", c.MinWindow, c.MaxWindow)
	case c.Coverage <= 0 || c.Coverage > 1:
		return fmt.Errorf("coadd: Coverage = %v", c.Coverage)
	case c.CoverSegment < 1:
		return fmt.Errorf("coadd: CoverSegment = %v", c.CoverSegment)
	case c.DropRange[0] < 0 || c.DropRange[1] > 1 || c.DropRange[1] < c.DropRange[0]:
		return fmt.Errorf("coadd: DropRange = %v", c.DropRange)
	}
	return nil
}

// coaddRun is one imaging run: an offset image grid plus a coverage bitmap
// and the file id assigned to each covered image.
type coaddRun struct {
	offset  float64
	covered []bool
	fileIDs []FileID // -1 where not covered
}

// GenerateCoadd builds the synthetic Coadd workload. Generation is
// deterministic given the config.
func GenerateCoadd(cfg CoaddConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	margin := cfg.MaxWindow + 2
	stripeLen := float64(cfg.Tasks-1)*cfg.TaskStride + 2*margin
	images := int(math.Ceil(stripeLen)) + 2

	// Lay out runs: offsets and contiguous coverage segments whose lengths
	// follow geometric distributions matching (Coverage, CoverSegment).
	runs := make([]*coaddRun, cfg.Runs)
	gapSegment := cfg.CoverSegment * (1 - cfg.Coverage) / cfg.Coverage
	if gapSegment < 1 {
		gapSegment = 1
	}
	nextFile := FileID(0)
	badness := make([]float64, cfg.Runs)
	for r := range runs {
		badness[r] = cfg.DropRange[0] + rng.Float64()*(cfg.DropRange[1]-cfg.DropRange[0])
		run := &coaddRun{
			offset:  rng.Float64(),
			covered: make([]bool, images),
			fileIDs: make([]FileID, images),
		}
		covered := rng.Float64() < cfg.Coverage
		for j := 0; j < images; {
			var segLen int
			if covered {
				segLen = 1 + geometric(rng, cfg.CoverSegment)
			} else {
				segLen = 1 + geometric(rng, gapSegment)
			}
			for s := 0; s < segLen && j < images; s++ {
				run.covered[j] = covered
				j++
			}
			covered = !covered
		}
		for j := 0; j < images; j++ {
			if run.covered[j] {
				run.fileIDs[j] = nextFile
				nextFile++
			} else {
				run.fileIDs[j] = -1
			}
		}
		runs[r] = run
	}

	w := &Workload{
		Name:     fmt.Sprintf("coadd-%d", cfg.Tasks),
		NumFiles: int(nextFile),
		Tasks:    make([]Task, cfg.Tasks),
	}
	for i := 0; i < cfg.Tasks; i++ {
		center := margin + float64(i)*cfg.TaskStride
		width := cfg.MinWindow + rng.Float64()*(cfg.MaxWindow-cfg.MinWindow)
		lo, hi := center-width/2, center+width/2
		var files []FileID
		for r, run := range runs {
			if rng.Float64() < badness[r] {
				continue // this task's quality cut rejects run r
			}
			// Image j of this run spans [j+offset, j+1+offset).
			jLo := int(math.Floor(lo - run.offset))
			jHi := int(math.Ceil(hi - run.offset))
			for j := jLo; j < jHi; j++ {
				if j < 0 || j >= images || !run.covered[j] {
					continue
				}
				// Overlap check (open interval semantics: tangent images
				// are not inputs).
				if float64(j)+run.offset < hi && float64(j+1)+run.offset > lo {
					files = append(files, run.fileIDs[j])
				}
			}
		}
		if len(files) == 0 {
			// Pathological all-gap window; anchor to the nearest covered
			// image of run 0 so every task stays executable.
			files = append(files, nearestCovered(runs[0], int(center)))
		}
		w.Tasks[i] = Task{ID: TaskID(i), Files: files}
	}
	return w, nil
}

// geometric draws a geometric variate with the given mean (>= 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	u := rng.Float64()
	// Inverse CDF of geometric on {0, 1, ...}.
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}

func nearestCovered(run *coaddRun, from int) FileID {
	n := len(run.covered)
	if from < 0 {
		from = 0
	}
	if from >= n {
		from = n - 1
	}
	for d := 0; d < n; d++ {
		if j := from - d; j >= 0 && run.covered[j] {
			return run.fileIDs[j]
		}
		if j := from + d; j < n && run.covered[j] {
			return run.fileIDs[j]
		}
	}
	return 0
}
