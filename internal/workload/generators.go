package workload

import (
	"fmt"
	"math/rand"
)

// ZipfConfig parameterizes a generic data-sharing Bag-of-Tasks where file
// popularity is Zipf-distributed — the data-mining / image-processing
// regime the paper's introduction cites (tasks over a shared corpus where
// some inputs are much hotter than others).
type ZipfConfig struct {
	Seed     int64   `json:"seed"`
	Tasks    int     `json:"tasks"`
	Files    int     `json:"files"`
	MinFiles int     `json:"minFilesPerTask"`
	MaxFiles int     `json:"maxFilesPerTask"`
	S        float64 `json:"s"` // Zipf exponent, > 1
}

// Validate checks the configuration.
func (c ZipfConfig) Validate() error {
	switch {
	case c.Tasks < 1 || c.Files < 1:
		return fmt.Errorf("zipf: Tasks = %d, Files = %d", c.Tasks, c.Files)
	case c.MinFiles < 1 || c.MaxFiles < c.MinFiles || c.MaxFiles > c.Files:
		return fmt.Errorf("zipf: file range [%d, %d] with %d files", c.MinFiles, c.MaxFiles, c.Files)
	case c.S <= 1:
		return fmt.Errorf("zipf: S = %v, need > 1", c.S)
	}
	return nil
}

// GenerateZipf builds a workload whose per-task file sets draw from a Zipf
// popularity distribution over the file universe.
func GenerateZipf(cfg ZipfConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, cfg.S, 1, uint64(cfg.Files-1))
	w := &Workload{
		Name:     fmt.Sprintf("zipf-%d", cfg.Tasks),
		NumFiles: cfg.Files,
		Tasks:    make([]Task, cfg.Tasks),
	}
	for i := 0; i < cfg.Tasks; i++ {
		n := cfg.MinFiles
		if cfg.MaxFiles > cfg.MinFiles {
			n += rng.Intn(cfg.MaxFiles - cfg.MinFiles + 1)
		}
		seen := make(map[FileID]struct{}, n)
		files := make([]FileID, 0, n)
		for len(files) < n {
			f := FileID(z.Uint64())
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			files = append(files, f)
		}
		w.Tasks[i] = Task{ID: TaskID(i), Files: files}
	}
	return w, nil
}

// GeometricConfig parameterizes the Ranganathan-Foster style workload
// (HPDC'02, cited as [13]): tasks request whole datasets whose popularity
// follows a geometric distribution, plus a few task-private files.
type GeometricConfig struct {
	Seed         int64   `json:"seed"`
	Tasks        int     `json:"tasks"`
	Datasets     int     `json:"datasets"`
	FilesPerSet  int     `json:"filesPerSet"`
	PrivateFiles int     `json:"privateFiles"` // per-task non-shared files
	P            float64 `json:"p"`            // geometric parameter in (0, 1)
}

// Validate checks the configuration.
func (c GeometricConfig) Validate() error {
	switch {
	case c.Tasks < 1 || c.Datasets < 1 || c.FilesPerSet < 1:
		return fmt.Errorf("geometric: Tasks=%d Datasets=%d FilesPerSet=%d", c.Tasks, c.Datasets, c.FilesPerSet)
	case c.PrivateFiles < 0:
		return fmt.Errorf("geometric: PrivateFiles = %d", c.PrivateFiles)
	case c.P <= 0 || c.P >= 1:
		return fmt.Errorf("geometric: P = %v, need (0,1)", c.P)
	}
	return nil
}

// GenerateGeometric builds the dataset-popularity workload.
func GenerateGeometric(cfg GeometricConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shared := cfg.Datasets * cfg.FilesPerSet
	w := &Workload{
		Name:     fmt.Sprintf("geometric-%d", cfg.Tasks),
		NumFiles: shared + cfg.Tasks*cfg.PrivateFiles,
		Tasks:    make([]Task, cfg.Tasks),
	}
	for i := 0; i < cfg.Tasks; i++ {
		// Geometric dataset pick, truncated to the universe.
		d := 0
		for rng.Float64() > cfg.P && d < cfg.Datasets-1 {
			d++
		}
		files := make([]FileID, 0, cfg.FilesPerSet+cfg.PrivateFiles)
		for f := 0; f < cfg.FilesPerSet; f++ {
			files = append(files, FileID(d*cfg.FilesPerSet+f))
		}
		for p := 0; p < cfg.PrivateFiles; p++ {
			files = append(files, FileID(shared+i*cfg.PrivateFiles+p))
		}
		w.Tasks[i] = Task{ID: TaskID(i), Files: files}
	}
	return w, nil
}

// UniformConfig parameterizes the no-locality control workload: every task
// samples files uniformly, so data reuse is incidental. Useful as a
// negative control for locality-aware schedulers.
type UniformConfig struct {
	Seed     int64 `json:"seed"`
	Tasks    int   `json:"tasks"`
	Files    int   `json:"files"`
	MinFiles int   `json:"minFilesPerTask"`
	MaxFiles int   `json:"maxFilesPerTask"`
}

// Validate checks the configuration.
func (c UniformConfig) Validate() error {
	switch {
	case c.Tasks < 1 || c.Files < 1:
		return fmt.Errorf("uniform: Tasks = %d, Files = %d", c.Tasks, c.Files)
	case c.MinFiles < 1 || c.MaxFiles < c.MinFiles || c.MaxFiles > c.Files:
		return fmt.Errorf("uniform: file range [%d, %d] with %d files", c.MinFiles, c.MaxFiles, c.Files)
	}
	return nil
}

// GenerateUniform builds the uniform-sampling workload.
func GenerateUniform(cfg UniformConfig) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{
		Name:     fmt.Sprintf("uniform-%d", cfg.Tasks),
		NumFiles: cfg.Files,
		Tasks:    make([]Task, cfg.Tasks),
	}
	for i := 0; i < cfg.Tasks; i++ {
		n := cfg.MinFiles
		if cfg.MaxFiles > cfg.MinFiles {
			n += rng.Intn(cfg.MaxFiles - cfg.MinFiles + 1)
		}
		seen := make(map[FileID]struct{}, n)
		files := make([]FileID, 0, n)
		for len(files) < n {
			f := FileID(rng.Intn(cfg.Files))
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			files = append(files, f)
		}
		w.Tasks[i] = Task{ID: TaskID(i), Files: files}
	}
	return w, nil
}
