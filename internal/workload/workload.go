// Package workload models Bag-of-Tasks data-intensive workloads.
//
// A Workload is a set of independent tasks, each referencing a set of input
// files out of a shared file universe (paper §2.2, assumptions 1 and 4).
// The package provides the synthetic Coadd generator (the paper's
// evaluation workload), generic Zipf/geometric/uniform generators for other
// data-sharing regimes, JSON trace I/O, and the reference-distribution
// statistics behind the paper's Figures 1 and 3 and Table 2.
package workload

import (
	"fmt"
	"sort"
)

// FileID identifies a file in the workload's universe, in [0, NumFiles).
type FileID int32

// TaskID identifies a task, in [0, len(Tasks)).
type TaskID int32

// Task is one unit of work: it may run on any worker once all its input
// files are present at the worker's site.
type Task struct {
	ID    TaskID   `json:"id"`
	Files []FileID `json:"files"`
}

// Workload is an immutable Bag-of-Tasks description.
type Workload struct {
	Name     string `json:"name"`
	NumFiles int    `json:"numFiles"`
	Tasks    []Task `json:"tasks"`
}

// Validate checks internal consistency: ids in range, no empty or duplicate
// file lists within a task.
func (w *Workload) Validate() error {
	if w.NumFiles <= 0 {
		return fmt.Errorf("workload %q: NumFiles = %d", w.Name, w.NumFiles)
	}
	for i, t := range w.Tasks {
		if t.ID != TaskID(i) {
			return fmt.Errorf("workload %q: task %d has id %d", w.Name, i, t.ID)
		}
		if len(t.Files) == 0 {
			return fmt.Errorf("workload %q: task %d has no files", w.Name, i)
		}
		seen := make(map[FileID]struct{}, len(t.Files))
		for _, f := range t.Files {
			if f < 0 || int(f) >= w.NumFiles {
				return fmt.Errorf("workload %q: task %d references file %d outside [0,%d)", w.Name, i, f, w.NumFiles)
			}
			if _, dup := seen[f]; dup {
				return fmt.Errorf("workload %q: task %d references file %d twice", w.Name, i, f)
			}
			seen[f] = struct{}{}
		}
	}
	return nil
}

// Stats summarizes a workload the way the paper's Table 2 does.
type Stats struct {
	Tasks           int     `json:"tasks"`
	TotalFiles      int     `json:"totalFiles"`      // distinct files referenced
	MinFilesPerTask int     `json:"minFilesPerTask"` // Table 2 "Min number of files needed"
	MaxFilesPerTask int     `json:"maxFilesPerTask"`
	AvgFilesPerTask float64 `json:"avgFilesPerTask"`
	TotalReferences int     `json:"totalReferences"` // sum of per-task file counts
	AvgRefsPerFile  float64 `json:"avgRefsPerFile"`
}

// ComputeStats scans the workload once and returns its summary.
func ComputeStats(w *Workload) Stats {
	s := Stats{Tasks: len(w.Tasks)}
	refs := make(map[FileID]int)
	for i, t := range w.Tasks {
		n := len(t.Files)
		s.TotalReferences += n
		if i == 0 || n < s.MinFilesPerTask {
			s.MinFilesPerTask = n
		}
		if n > s.MaxFilesPerTask {
			s.MaxFilesPerTask = n
		}
		for _, f := range t.Files {
			refs[f]++
		}
	}
	s.TotalFiles = len(refs)
	if s.Tasks > 0 {
		s.AvgFilesPerTask = float64(s.TotalReferences) / float64(s.Tasks)
	}
	if s.TotalFiles > 0 {
		s.AvgRefsPerFile = float64(s.TotalReferences) / float64(s.TotalFiles)
	}
	return s
}

// RefCDFPoint is one point of the paper's Figure 1/3 curve: Percent percent
// of the referenced files are accessed by at least MinRefs tasks.
type RefCDFPoint struct {
	MinRefs int     `json:"minRefs"`
	Percent float64 `json:"percent"`
}

// ReferenceCDF builds the cumulative reference distribution of Figures 1
// and 3: for each reference count r present, the percentage of files
// referenced by >= r tasks. Points are returned in increasing MinRefs
// order (the paper plots the x-axis decreasing; same data).
func ReferenceCDF(w *Workload) []RefCDFPoint {
	refs := make(map[FileID]int)
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			refs[f]++
		}
	}
	if len(refs) == 0 {
		return nil
	}
	counts := make([]int, 0, len(refs))
	for _, r := range refs {
		counts = append(counts, r)
	}
	sort.Ints(counts)
	total := float64(len(counts))
	var out []RefCDFPoint
	// counts is ascending; files with refs >= counts[i] are those at i..end.
	for i := 0; i < len(counts); i++ {
		if i > 0 && counts[i] == counts[i-1] {
			continue
		}
		out = append(out, RefCDFPoint{
			MinRefs: counts[i],
			Percent: 100 * float64(len(counts)-i) / total,
		})
	}
	return out
}

// PercentWithAtLeast returns the percentage of distinct files referenced by
// at least minRefs tasks (the "roughly 85% of files are accessed by 6 or
// more tasks" statistic).
func PercentWithAtLeast(w *Workload, minRefs int) float64 {
	cdf := ReferenceCDF(w)
	// cdf is ascending in MinRefs with decreasing Percent; find the first
	// point at or above minRefs.
	for _, pt := range cdf {
		if pt.MinRefs >= minRefs {
			return pt.Percent
		}
	}
	return 0
}
