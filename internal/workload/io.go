package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write serializes the workload as JSON to w.
func (w *Workload) Write(out io.Writer) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(w); err != nil {
		return fmt.Errorf("workload: encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: flush: %w", err)
	}
	return nil
}

// Read parses a JSON workload trace and validates it.
func Read(in io.Reader) (*Workload, error) {
	var w Workload
	dec := json.NewDecoder(bufio.NewReader(in))
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// SaveFile writes the workload trace to path.
func (w *Workload) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("workload: close: %w", cerr)
		}
	}()
	return w.Write(f)
}

// LoadFile reads a workload trace from path.
func LoadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return Read(f)
}
