package topology

import (
	"fmt"
	"math/rand"
)

// SpeedDist describes a per-tier link speed/latency distribution. Each
// generated link draws bandwidth and latency uniformly from
// [Mean*(1-Jitter), Mean*(1+Jitter)].
type SpeedDist struct {
	BandwidthBps float64 // mean capacity, bytes/second
	LatencySec   float64 // mean propagation latency, seconds
	Jitter       float64 // relative spread in [0, 1)
}

func (d SpeedDist) draw(rng *rand.Rand) (bw, lat float64) {
	j := func(mean float64) float64 {
		if d.Jitter <= 0 {
			return mean
		}
		return mean * (1 - d.Jitter + 2*d.Jitter*rng.Float64())
	}
	return j(d.BandwidthBps), j(d.LatencySec)
}

const mbps = 1e6 / 8 // bytes/second per Mbit/s

// TiersConfig parameterizes the hierarchical generator. The generated
// topology is a WAN core (ring + chords) with MAN trees hanging off WAN
// nodes, LANs hanging off MAN nodes, and sites attached to LANs. The global
// file server and scheduler attach to the first WAN node.
type TiersConfig struct {
	Seed int64 `json:"seed"`

	WANNodes       int `json:"wanNodes"`       // nodes in the WAN core ring
	WANChords      int `json:"wanChords"`      // extra random WAN-level edges
	MANsPerWANNode int `json:"mansPerWanNode"` // MAN subtrees per WAN node
	MANNodes       int `json:"manNodes"`       // nodes per MAN (chain off the WAN node)
	LANsPerMANNode int `json:"lansPerManNode"` // LANs per MAN node
	SitesPerLAN    int `json:"sitesPerLan"`    // grid sites per LAN

	WAN SpeedDist `json:"wan"`
	MAN SpeedDist `json:"man"`
	LAN SpeedDist `json:"lan"`
}

// DefaultTiersConfig mirrors the paper's setup scale: 96 generated sites
// (>= the 90 the paper mentions), slow shared WAN links and fast LANs,
// so wide-area transfers dominate — the regime data-intensive scheduling
// targets.
func DefaultTiersConfig(seed int64) TiersConfig {
	return TiersConfig{
		Seed:           seed,
		WANNodes:       4,
		WANChords:      2,
		MANsPerWANNode: 3,
		MANNodes:       2,
		LANsPerMANNode: 2,
		SitesPerLAN:    2,
		WAN:            SpeedDist{BandwidthBps: 4 * mbps, LatencySec: 0.040, Jitter: 0.5},
		MAN:            SpeedDist{BandwidthBps: 100 * mbps, LatencySec: 0.010, Jitter: 0.5},
		LAN:            SpeedDist{BandwidthBps: 1000 * mbps, LatencySec: 0.001, Jitter: 0.5},
	}
}

// SiteCount returns the number of sites the config will generate.
func (c TiersConfig) SiteCount() int {
	return c.WANNodes * c.MANsPerWANNode * c.MANNodes * c.LANsPerMANNode * c.SitesPerLAN
}

// Validate checks structural parameters.
func (c TiersConfig) Validate() error {
	switch {
	case c.WANNodes < 1:
		return fmt.Errorf("topology: WANNodes = %d, need >= 1", c.WANNodes)
	case c.MANsPerWANNode < 1 || c.MANNodes < 1 || c.LANsPerMANNode < 1 || c.SitesPerLAN < 1:
		return fmt.Errorf("topology: all tier fan-outs must be >= 1")
	case c.WAN.BandwidthBps <= 0 || c.MAN.BandwidthBps <= 0 || c.LAN.BandwidthBps <= 0:
		return fmt.Errorf("topology: bandwidths must be positive")
	}
	return nil
}

// Topology is a generated grid topology: the graph plus the ids of the
// special nodes the simulator wires actors to.
type Topology struct {
	Graph      *Graph
	Sites      []NodeID // all generated site nodes, in generation order
	FileServer NodeID
	Scheduler  NodeID
}

// GenerateTiers builds a topology from the config. Generation is fully
// deterministic given cfg (including the seed).
func GenerateTiers(cfg TiersConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()
	topo := &Topology{Graph: g}

	wan := make([]NodeID, cfg.WANNodes)
	for i := range wan {
		wan[i] = g.AddNode(KindWAN, fmt.Sprintf("wan%d", i))
	}
	// WAN ring.
	for i := 0; i < cfg.WANNodes; i++ {
		next := (i + 1) % cfg.WANNodes
		if next == i { // single-node core: no self loops
			break
		}
		bw, lat := cfg.WAN.draw(rng)
		g.AddLink(wan[i], wan[next], bw, lat)
		if cfg.WANNodes == 2 { // avoid a duplicate second ring edge
			break
		}
	}
	// Random WAN chords for Tiers-style redundancy.
	for c := 0; c < cfg.WANChords && cfg.WANNodes > 3; c++ {
		a := rng.Intn(cfg.WANNodes)
		b := rng.Intn(cfg.WANNodes)
		if a == b || (a+1)%cfg.WANNodes == b || (b+1)%cfg.WANNodes == a {
			continue
		}
		bw, lat := cfg.WAN.draw(rng)
		g.AddLink(wan[a], wan[b], bw, lat)
	}

	siteIdx := 0
	for wi, wnode := range wan {
		for m := 0; m < cfg.MANsPerWANNode; m++ {
			parent := wnode
			parentDist := cfg.WAN
			for mn := 0; mn < cfg.MANNodes; mn++ {
				man := g.AddNode(KindMAN, fmt.Sprintf("man%d.%d.%d", wi, m, mn))
				bw, lat := parentDist.draw(rng)
				g.AddLink(parent, man, bw, lat)
				parent = man
				parentDist = cfg.MAN
				for l := 0; l < cfg.LANsPerMANNode; l++ {
					lan := g.AddNode(KindLAN, fmt.Sprintf("lan%d.%d.%d.%d", wi, m, mn, l))
					mbw, mlat := cfg.MAN.draw(rng)
					g.AddLink(man, lan, mbw, mlat)
					for s := 0; s < cfg.SitesPerLAN; s++ {
						site := g.AddNode(KindSite, fmt.Sprintf("site%d", siteIdx))
						siteIdx++
						lbw, llat := cfg.LAN.draw(rng)
						g.AddLink(lan, site, lbw, llat)
						topo.Sites = append(topo.Sites, site)
					}
				}
			}
		}
	}

	// Global services hang off the first WAN node over fast dedicated links.
	topo.FileServer = g.AddNode(KindFileServer, "fileserver")
	fbw, flat := cfg.MAN.draw(rng)
	g.AddLink(wan[0], topo.FileServer, fbw, flat)
	topo.Scheduler = g.AddNode(KindScheduler, "scheduler")
	sbw, slat := cfg.MAN.draw(rng)
	g.AddLink(wan[0], topo.Scheduler, sbw, slat)

	return topo, nil
}
