// Package topology models hierarchical grid network topologies.
//
// It substitutes for the Tiers topology generator used in the paper
// (Doar, "A Better Model for Generating Test Networks", Globecom'96):
// a three-level WAN/MAN/LAN tree with per-tier bandwidth and latency
// distributions, grid sites attached to LAN nodes, and the global file
// server and scheduler attached to the WAN core.
package topology

import (
	"container/heap"
	"fmt"
)

// NodeID identifies a node in a Graph.
type NodeID int

// LinkID identifies a link in a Graph.
type LinkID int

// NodeKind classifies nodes by their role in the hierarchy.
type NodeKind int

// Node kinds. Sites host workers and a data server; the hub hosts the
// global scheduler and external file server.
const (
	KindWAN NodeKind = iota + 1
	KindMAN
	KindLAN
	KindSite
	KindFileServer
	KindScheduler
)

func (k NodeKind) String() string {
	switch k {
	case KindWAN:
		return "wan"
	case KindMAN:
		return "man"
	case KindLAN:
		return "lan"
	case KindSite:
		return "site"
	case KindFileServer:
		return "fileserver"
	case KindScheduler:
		return "scheduler"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a vertex of the topology graph.
type Node struct {
	ID   NodeID   `json:"id"`
	Kind NodeKind `json:"kind"`
	Name string   `json:"name"`
}

// Link is an undirected edge with a bandwidth capacity and propagation
// latency. Bandwidth is in bytes/second, latency in seconds.
type Link struct {
	ID        LinkID  `json:"id"`
	A         NodeID  `json:"a"`
	B         NodeID  `json:"b"`
	Bandwidth float64 `json:"bandwidthBps"`
	Latency   float64 `json:"latencySec"`
}

// Route is a path through the graph as an ordered list of links, plus the
// summed propagation latency.
type Route struct {
	Links   []LinkID
	Latency float64
}

// Graph is an undirected multigraph of nodes and links.
type Graph struct {
	Nodes []Node
	Links []Link

	adj map[NodeID][]LinkID

	routeCache map[[2]NodeID]*Route
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		adj:        make(map[NodeID][]LinkID),
		routeCache: make(map[[2]NodeID]*Route),
	}
}

// AddNode appends a node of the given kind and returns its id.
func (g *Graph) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name})
	return id
}

// AddLink connects a and b with the given capacity (bytes/s) and latency
// (seconds) and returns the link id.
func (g *Graph) AddLink(a, b NodeID, bandwidth, latency float64) LinkID {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("topology: non-positive bandwidth %v", bandwidth))
	}
	if latency < 0 {
		panic(fmt.Sprintf("topology: negative latency %v", latency))
	}
	id := LinkID(len(g.Links))
	g.Links = append(g.Links, Link{ID: id, A: a, B: b, Bandwidth: bandwidth, Latency: latency})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id
}

// Incident returns the ids of links touching n. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Incident(n NodeID) []LinkID { return g.adj[n] }

// Other returns the endpoint of link l that is not n.
func (g *Graph) Other(l LinkID, n NodeID) NodeID {
	link := g.Links[l]
	if link.A == n {
		return link.B
	}
	return link.A
}

// NodesOfKind returns the ids of all nodes with the given kind, in id order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

type dijkstraItem struct {
	node NodeID
	dist float64
	seq  int
	idx  int
}

type dijkstraHeap []*dijkstraItem

func (h dijkstraHeap) Len() int { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}
func (h dijkstraHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *dijkstraHeap) Push(x any) {
	it := x.(*dijkstraItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *dijkstraHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// RouteBetween returns the minimum-latency route from a to b, computed with
// Dijkstra over link latencies and memoized. A cache miss settles the whole
// graph from a and caches the route to every reachable node — every
// simulated transfer shares the file server as one endpoint, so the
// per-destination routes would otherwise each pay a full Dijkstra anyway.
// It returns an error if b is unreachable from a.
func (g *Graph) RouteBetween(a, b NodeID) (*Route, error) {
	key := [2]NodeID{a, b}
	if r, ok := g.routeCache[key]; ok {
		return r, nil
	}
	if a == b {
		r := &Route{}
		g.routeCache[key] = r
		return r, nil
	}

	const unvisited = -1
	dist := make([]float64, len(g.Nodes))
	prevLink := make([]LinkID, len(g.Nodes))
	settled := make([]bool, len(g.Nodes))
	for i := range dist {
		dist[i] = -1
		prevLink[i] = unvisited
	}
	dist[a] = 0
	h := dijkstraHeap{{node: a, dist: 0}}
	seq := 0
	for h.Len() > 0 {
		it := heap.Pop(&h).(*dijkstraItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		for _, lid := range g.adj[it.node] {
			next := g.Other(lid, it.node)
			if settled[next] {
				continue
			}
			nd := dist[it.node] + g.Links[lid].Latency
			if dist[next] < 0 || nd < dist[next] {
				dist[next] = nd
				prevLink[next] = lid
				seq++
				heap.Push(&h, &dijkstraItem{node: next, dist: nd, seq: seq})
			}
		}
	}
	if prevLink[b] == unvisited {
		return nil, fmt.Errorf("topology: node %d unreachable from %d", b, a)
	}
	for n := range g.Nodes {
		node := NodeID(n)
		if node == a || prevLink[node] == unvisited {
			continue
		}
		var links []LinkID
		for cur := node; cur != a; {
			lid := prevLink[cur]
			links = append(links, lid)
			cur = g.Other(lid, cur)
		}
		// Reverse into a-to-destination order.
		for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
			links[i], links[j] = links[j], links[i]
		}
		g.routeCache[[2]NodeID{a, node}] = &Route{Links: links, Latency: dist[node]}
	}
	r := g.routeCache[key]
	return r, nil
}
