package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateTiersDefaultShape(t *testing.T) {
	cfg := DefaultTiersConfig(1)
	topo, err := GenerateTiers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(topo.Sites), cfg.SiteCount(); got != want {
		t.Fatalf("sites = %d, want %d", got, want)
	}
	if len(topo.Sites) < 90 {
		t.Fatalf("sites = %d, want >= 90 to match the paper's setup", len(topo.Sites))
	}
	for _, s := range topo.Sites {
		if topo.Graph.Nodes[s].Kind != KindSite {
			t.Fatalf("node %d is %v, want site", s, topo.Graph.Nodes[s].Kind)
		}
	}
	if topo.Graph.Nodes[topo.FileServer].Kind != KindFileServer {
		t.Fatal("file server node has wrong kind")
	}
}

func TestGenerateTiersDeterministic(t *testing.T) {
	a, err := GenerateTiers(DefaultTiersConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTiers(DefaultTiersConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Graph.Links) != len(b.Graph.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Graph.Links), len(b.Graph.Links))
	}
	for i := range a.Graph.Links {
		la, lb := a.Graph.Links[i], b.Graph.Links[i]
		if la != lb {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
}

func TestGenerateTiersSeedsDiffer(t *testing.T) {
	a, _ := GenerateTiers(DefaultTiersConfig(1))
	b, _ := GenerateTiers(DefaultTiersConfig(2))
	same := true
	for i := range a.Graph.Links {
		if a.Graph.Links[i].Bandwidth != b.Graph.Links[i].Bandwidth {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical link bandwidths")
	}
}

func TestAllSitesReachFileServer(t *testing.T) {
	topo, err := GenerateTiers(DefaultTiersConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range topo.Sites {
		r, err := topo.Graph.RouteBetween(s, topo.FileServer)
		if err != nil {
			t.Fatalf("site %d: %v", s, err)
		}
		if len(r.Links) == 0 {
			t.Fatalf("site %d: empty route", s)
		}
		if r.Latency <= 0 {
			t.Fatalf("site %d: latency %v", s, r.Latency)
		}
		// Route must be a connected walk from s to the file server.
		cur := s
		for _, lid := range r.Links {
			cur = topo.Graph.Other(lid, cur)
		}
		if cur != topo.FileServer {
			t.Fatalf("site %d: route does not end at file server", s)
		}
	}
}

func TestRouteSelfIsEmpty(t *testing.T) {
	topo, _ := GenerateTiers(DefaultTiersConfig(3))
	r, err := topo.Graph.RouteBetween(topo.FileServer, topo.FileServer)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 0 || r.Latency != 0 {
		t.Fatalf("self route = %+v, want empty", r)
	}
}

func TestRouteUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindSite, "a")
	b := g.AddNode(KindSite, "b")
	if _, err := g.RouteBetween(a, b); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestRouteIsMinimumLatency(t *testing.T) {
	// Triangle with a shortcut: a-b direct (lat 10) vs a-c-b (lat 1+1).
	g := NewGraph()
	a := g.AddNode(KindWAN, "a")
	b := g.AddNode(KindWAN, "b")
	c := g.AddNode(KindWAN, "c")
	g.AddLink(a, b, 1e6, 10)
	l1 := g.AddLink(a, c, 1e6, 1)
	l2 := g.AddLink(c, b, 1e6, 1)
	r, err := g.RouteBetween(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency != 2 || len(r.Links) != 2 || r.Links[0] != l1 || r.Links[1] != l2 {
		t.Fatalf("route = %+v, want via c", r)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := DefaultTiersConfig(1)
	bad.WANNodes = 0
	if _, err := GenerateTiers(bad); err == nil {
		t.Fatal("accepted WANNodes=0")
	}
	bad = DefaultTiersConfig(1)
	bad.SitesPerLAN = 0
	if _, err := GenerateTiers(bad); err == nil {
		t.Fatal("accepted SitesPerLAN=0")
	}
	bad = DefaultTiersConfig(1)
	bad.WAN.BandwidthBps = 0
	if _, err := GenerateTiers(bad); err == nil {
		t.Fatal("accepted zero WAN bandwidth")
	}
}

// Property: any structurally valid config yields a connected topology with
// the predicted site count and all-positive link parameters.
func TestGenerateTiersProperty(t *testing.T) {
	f := func(seed int64, w, m, mn, l, s uint8) bool {
		cfg := DefaultTiersConfig(seed)
		cfg.WANNodes = 1 + int(w)%4
		cfg.MANsPerWANNode = 1 + int(m)%3
		cfg.MANNodes = 1 + int(mn)%3
		cfg.LANsPerMANNode = 1 + int(l)%3
		cfg.SitesPerLAN = 1 + int(s)%3
		topo, err := GenerateTiers(cfg)
		if err != nil {
			return false
		}
		if len(topo.Sites) != cfg.SiteCount() {
			return false
		}
		for _, link := range topo.Graph.Links {
			if link.Bandwidth <= 0 || link.Latency < 0 {
				return false
			}
		}
		for _, site := range topo.Sites {
			if _, err := topo.Graph.RouteBetween(site, topo.FileServer); err != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedDistJitterBounds(t *testing.T) {
	d := SpeedDist{BandwidthBps: 100, LatencySec: 1, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		bw, lat := d.draw(rng)
		if bw < 50 || bw > 150 {
			t.Fatalf("bandwidth %v outside [50,150]", bw)
		}
		if lat < 0.5 || lat > 1.5 {
			t.Fatalf("latency %v outside [0.5,1.5]", lat)
		}
	}
}
