// Package storage implements a site's data-server storage: a bounded file
// cache with LRU (or FIFO) replacement, plus the per-file past-reference
// counters the paper's Combined metric consumes (§4.2).
//
// Capacity is counted in files, matching the paper's equal-file-size
// assumption (§2.2, assumption 8); byte-based accounting is the same
// mechanism scaled by the constant file size.
package storage

import (
	"container/list"
	"fmt"

	"gridsched/internal/workload"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies. The paper does not name one; LRU is the default and
// FIFO exists for the eviction ablation.
const (
	LRU Policy = iota + 1
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Stats counts cache activity since creation.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// Store is a bounded file cache. It is not safe for concurrent use; in the
// simulator all access is serialized by the kernel, and the live runtime
// wraps it in its own lock.
type Store struct {
	capacity int
	policy   Policy
	order    *list.List // front = most recently used
	index    map[workload.FileID]*list.Element
	refs     map[workload.FileID]int
	stats    Stats
}

// New returns an empty store holding at most capacity files.
func New(capacity int, policy Policy) (*Store, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: capacity = %d", capacity)
	}
	if policy != LRU && policy != FIFO {
		return nil, fmt.Errorf("storage: unknown policy %v", policy)
	}
	return &Store{
		capacity: capacity,
		policy:   policy,
		order:    list.New(),
		index:    make(map[workload.FileID]*list.Element),
		refs:     make(map[workload.FileID]int),
	}, nil
}

// Capacity returns the maximum number of resident files.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the number of resident files.
func (s *Store) Len() int { return s.order.Len() }

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats { return s.stats }

// Contains reports whether f is resident.
func (s *Store) Contains(f workload.FileID) bool {
	_, ok := s.index[f]
	return ok
}

// References returns how many past task executions at this site referenced
// f. The count survives eviction: it is site history, not cache state.
func (s *Store) References(f workload.FileID) int { return s.refs[f] }

// Missing returns the subset of files not resident, preserving order.
func (s *Store) Missing(files []workload.FileID) []workload.FileID {
	var out []workload.FileID
	for _, f := range files {
		if !s.Contains(f) {
			out = append(out, f)
		}
	}
	return out
}

// Overlap returns |files ∩ resident| — the paper's overlap cardinality
// between a task and this storage (§2.2).
func (s *Store) Overlap(files []workload.FileID) int {
	n := 0
	for _, f := range files {
		if s.Contains(f) {
			n++
		}
	}
	return n
}

// CommitBatch makes every file in files resident and counts one reference
// per file, evicting non-batch files as needed. It returns the files that
// were fetched (previously missing) and the files evicted to make room.
// The batch itself is never evicted: a task needs all its inputs resident
// at once (assumption 5), so a batch larger than capacity is an error.
func (s *Store) CommitBatch(files []workload.FileID) (fetched, evicted []workload.FileID, err error) {
	if len(files) > s.capacity {
		return nil, nil, fmt.Errorf("storage: batch of %d exceeds capacity %d", len(files), s.capacity)
	}
	inBatch := make(map[workload.FileID]struct{}, len(files))
	for _, f := range files {
		inBatch[f] = struct{}{}
	}
	for _, f := range files {
		s.refs[f]++
		if el, ok := s.index[f]; ok {
			s.stats.Hits++
			if s.policy == LRU {
				s.order.MoveToFront(el)
			}
			continue
		}
		s.stats.Misses++
		fetched = append(fetched, f)
		// Make room, skipping batch members.
		for s.order.Len() >= s.capacity {
			victim := s.evictOne(inBatch)
			if victim < 0 {
				return nil, nil, fmt.Errorf("storage: cannot evict, all %d resident files belong to the batch", s.order.Len())
			}
			evicted = append(evicted, victim)
		}
		s.index[f] = s.order.PushFront(f)
		s.stats.Inserts++
	}
	return fetched, evicted, nil
}

// Preload makes f resident without counting a task reference — the entry
// point for proactive data replication (a server push, not a task access).
// It reports whether the file was actually added (false if already
// resident) and any file evicted to make room.
func (s *Store) Preload(f workload.FileID) (added bool, evicted []workload.FileID) {
	if s.Contains(f) {
		return false, nil
	}
	for s.order.Len() >= s.capacity {
		victim := s.evictOne(nil)
		if victim < 0 {
			return false, evicted // cannot happen with capacity >= 1
		}
		evicted = append(evicted, victim)
	}
	s.index[f] = s.order.PushFront(f)
	s.stats.Inserts++
	return true, evicted
}

// evictOne removes the least-recently-used (or oldest, under FIFO) file not
// in keep. It returns -1 if every resident file is in keep.
func (s *Store) evictOne(keep map[workload.FileID]struct{}) workload.FileID {
	for el := s.order.Back(); el != nil; el = el.Prev() {
		f := el.Value.(workload.FileID)
		if _, pinned := keep[f]; pinned {
			continue
		}
		s.order.Remove(el)
		delete(s.index, f)
		s.stats.Evictions++
		return f
	}
	return -1
}

// Resident returns the resident files in recency order (most recent first).
// It allocates a fresh slice.
func (s *Store) Resident() []workload.FileID {
	out := make([]workload.FileID, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(workload.FileID))
	}
	return out
}
