// Package storage implements a site's data-server storage: a bounded file
// cache with LRU (or FIFO) replacement, plus the per-file past-reference
// counters the paper's Combined metric consumes (§4.2).
//
// Capacity is counted in files, matching the paper's equal-file-size
// assumption (§2.2, assumption 8); byte-based accounting is the same
// mechanism scaled by the constant file size.
//
// The implementation is dense and allocation-free on the hot path: the
// recency order is an intrusive doubly-linked list over fixed slot arrays,
// and per-file state (slot, reference count, batch pinning) lives in
// arrays indexed by FileID that grow on demand. Earlier revisions used
// container/list plus maps, whose per-insert allocations and hashing
// dominated batch commits in simulation sweeps.
package storage

import (
	"fmt"

	"gridsched/internal/workload"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies. The paper does not name one; LRU is the default and
// FIFO exists for the eviction ablation.
const (
	LRU Policy = iota + 1
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Stats counts cache activity since creation.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

const noSlot = int32(-1)

// Store is a bounded file cache. It is not safe for concurrent use; in the
// simulator all access is serialized by the kernel, and the live runtime
// wraps it in its own lock.
type Store struct {
	capacity int
	policy   Policy
	stats    Stats

	// Intrusive recency list over slots; head = most recently used. Slot
	// arrays grow on demand up to capacity, so a store whose working set
	// never fills its (possibly huge) capacity stays small.
	next, prev []int32 // per allocated slot
	fileAt     []int32 // per allocated slot: resident FileID
	head, tail int32
	count      int
	freeHead   int32 // free-slot stack threaded through next

	// Per-file state, indexed by FileID and grown on demand.
	slot       []int32  // slot holding f, or noSlot
	refs       []int32  // past references; survives eviction (site history)
	batchEpoch []uint32 // pin marker: == epoch while f is in the batch
	epoch      uint32
}

// New returns an empty store holding at most capacity files.
func New(capacity int, policy Policy) (*Store, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: capacity = %d", capacity)
	}
	if policy != LRU && policy != FIFO {
		return nil, fmt.Errorf("storage: unknown policy %v", policy)
	}
	return &Store{
		capacity: capacity,
		policy:   policy,
		head:     noSlot,
		tail:     noSlot,
		freeHead: noSlot,
	}, nil
}

// Reserve pre-sizes the per-file state for a universe of numFiles files
// (ids in [0, numFiles)). Purely an allocation hint: the arrays grow on
// demand anyway, but a caller that knows the workload's file universe
// avoids the growth reallocations entirely.
func (s *Store) Reserve(numFiles int) {
	if numFiles > len(s.slot) {
		s.grow(workload.FileID(numFiles - 1))
	}
}

// grow extends the per-file arrays to cover f, at least doubling to keep
// reallocation amortized.
func (s *Store) grow(f workload.FileID) {
	if int(f) < len(s.slot) {
		return
	}
	want := int(f) + 1
	if n := 2 * len(s.slot); n > want {
		want = n
	}
	slot := make([]int32, want)
	copy(slot, s.slot)
	for i := len(s.slot); i < want; i++ {
		slot[i] = noSlot
	}
	s.slot = slot
	refs := make([]int32, want)
	copy(refs, s.refs)
	s.refs = refs
	epochs := make([]uint32, want)
	copy(epochs, s.batchEpoch)
	s.batchEpoch = epochs
}

// Capacity returns the maximum number of resident files.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the number of resident files.
func (s *Store) Len() int { return s.count }

// Stats returns a copy of the activity counters.
func (s *Store) Stats() Stats { return s.stats }

// Contains reports whether f is resident.
func (s *Store) Contains(f workload.FileID) bool {
	return int(f) < len(s.slot) && s.slot[f] != noSlot
}

// References returns how many past task executions at this site referenced
// f. The count survives eviction: it is site history, not cache state.
func (s *Store) References(f workload.FileID) int {
	if int(f) >= len(s.refs) {
		return 0
	}
	return int(s.refs[f])
}

// Missing returns the subset of files not resident, preserving order.
func (s *Store) Missing(files []workload.FileID) []workload.FileID {
	return s.AppendMissing(nil, files)
}

// AppendMissing appends the non-resident subset of files to dst (order
// preserved) and returns the extended slice — the allocation-free form of
// Missing for callers with a reusable buffer.
func (s *Store) AppendMissing(dst, files []workload.FileID) []workload.FileID {
	for _, f := range files {
		if !s.Contains(f) {
			dst = append(dst, f)
		}
	}
	return dst
}

// Overlap returns |files ∩ resident| — the paper's overlap cardinality
// between a task and this storage (§2.2).
func (s *Store) Overlap(files []workload.FileID) int {
	n := 0
	for _, f := range files {
		if s.Contains(f) {
			n++
		}
	}
	return n
}

// unlink removes slot i from the recency list.
func (s *Store) unlink(i int32) {
	if s.prev[i] != noSlot {
		s.next[s.prev[i]] = s.next[i]
	} else {
		s.head = s.next[i]
	}
	if s.next[i] != noSlot {
		s.prev[s.next[i]] = s.prev[i]
	} else {
		s.tail = s.prev[i]
	}
}

// pushFront makes slot i the most recently used.
func (s *Store) pushFront(i int32) {
	s.prev[i] = noSlot
	s.next[i] = s.head
	if s.head != noSlot {
		s.prev[s.head] = i
	}
	s.head = i
	if s.tail == noSlot {
		s.tail = i
	}
}

// moveToFront refreshes slot i's recency.
func (s *Store) moveToFront(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.pushFront(i)
}

// insert makes f resident in a fresh slot at the front, allocating a new
// slot while fewer than capacity exist.
func (s *Store) insert(f workload.FileID) {
	var i int32
	if s.freeHead != noSlot {
		i = s.freeHead
		s.freeHead = s.next[i]
	} else {
		i = int32(len(s.next))
		s.next = append(s.next, noSlot)
		s.prev = append(s.prev, noSlot)
		s.fileAt = append(s.fileAt, 0)
	}
	s.fileAt[i] = int32(f)
	s.slot[f] = i
	s.count++
	s.pushFront(i)
	s.stats.Inserts++
}

// CommitBatch makes every file in files resident and counts one reference
// per file, evicting non-batch files as needed. It returns the files that
// were fetched (previously missing) and the files evicted to make room.
// The batch itself is never evicted: a task needs all its inputs resident
// at once (assumption 5), so a batch larger than capacity is an error.
func (s *Store) CommitBatch(files []workload.FileID) (fetched, evicted []workload.FileID, err error) {
	return s.CommitBatchInto(files, nil, nil)
}

// CommitBatchInto is CommitBatch appending into caller-provided fetched and
// evicted buffers (pass them length-zero), the allocation-free form for
// hot dispatch paths. The returned slices alias the buffers.
func (s *Store) CommitBatchInto(files, fetched, evicted []workload.FileID) ([]workload.FileID, []workload.FileID, error) {
	if len(files) > s.capacity {
		return nil, nil, fmt.Errorf("storage: batch of %d exceeds capacity %d", len(files), s.capacity)
	}
	s.epoch++
	// Pass 1: pin (and count) the whole batch before any eviction below
	// can run — the batch itself must never be evicted.
	for _, f := range files {
		s.grow(f)
		s.batchEpoch[f] = s.epoch
		s.refs[f]++
	}
	for _, f := range files {
		if i := s.slot[f]; i != noSlot {
			s.stats.Hits++
			if s.policy == LRU {
				s.moveToFront(i)
			}
			continue
		}
		s.stats.Misses++
		fetched = append(fetched, f)
		// Make room, skipping batch members.
		for s.count >= s.capacity {
			victim := s.evictOne(true)
			if victim < 0 {
				return nil, nil, fmt.Errorf("storage: cannot evict, all %d resident files belong to the batch", s.count)
			}
			evicted = append(evicted, victim)
		}
		s.insert(f)
	}
	return fetched, evicted, nil
}

// Preload makes f resident without counting a task reference — the entry
// point for proactive data replication (a server push, not a task access).
// It reports whether the file was actually added (false if already
// resident) and any file evicted to make room.
func (s *Store) Preload(f workload.FileID) (added bool, evicted []workload.FileID) {
	s.grow(f)
	if s.Contains(f) {
		return false, nil
	}
	for s.count >= s.capacity {
		victim := s.evictOne(false)
		if victim < 0 {
			return false, evicted // cannot happen with capacity >= 1
		}
		evicted = append(evicted, victim)
	}
	s.insert(f)
	return true, evicted
}

// evictOne removes the least-recently-used (or oldest, under FIFO) file,
// skipping current-batch members when pinBatch is set. It returns -1 if
// every resident file is pinned.
func (s *Store) evictOne(pinBatch bool) workload.FileID {
	for i := s.tail; i != noSlot; i = s.prev[i] {
		f := workload.FileID(s.fileAt[i])
		if pinBatch && s.batchEpoch[f] == s.epoch {
			continue
		}
		s.unlink(i)
		s.slot[f] = noSlot
		s.count--
		s.next[i] = s.freeHead
		s.freeHead = i
		s.stats.Evictions++
		return f
	}
	return -1
}

// Resident returns the resident files in recency order (most recent first).
// It allocates a fresh slice.
func (s *Store) Resident() []workload.FileID {
	out := make([]workload.FileID, 0, s.count)
	for i := s.head; i != noSlot; i = s.next[i] {
		out = append(out, workload.FileID(s.fileAt[i]))
	}
	return out
}
