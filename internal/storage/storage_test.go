package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridsched/internal/workload"
)

func mustNew(t *testing.T, capacity int, p Policy) *Store {
	t.Helper()
	s, err := New(capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ids(vals ...int) []workload.FileID {
	out := make([]workload.FileID, len(vals))
	for i, v := range vals {
		out[i] = workload.FileID(v)
	}
	return out
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(0, LRU); err == nil {
		t.Error("accepted capacity 0")
	}
	if _, err := New(10, Policy(0)); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestCommitBatchBasics(t *testing.T) {
	s := mustNew(t, 10, LRU)
	fetched, evicted, err := s.CommitBatch(ids(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 3 || len(evicted) != 0 {
		t.Fatalf("fetched=%v evicted=%v", fetched, evicted)
	}
	if s.Len() != 3 || !s.Contains(1) || !s.Contains(2) || !s.Contains(3) {
		t.Fatalf("resident = %v", s.Resident())
	}
	// Second commit of an overlapping batch fetches only the new file.
	fetched, evicted, err = s.CommitBatch(ids(2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 1 || fetched[0] != 4 || len(evicted) != 0 {
		t.Fatalf("fetched=%v evicted=%v", fetched, evicted)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Inserts != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReferencesSurviveEviction(t *testing.T) {
	s := mustNew(t, 2, LRU)
	if _, _, err := s.CommitBatch(ids(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CommitBatch(ids(3, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(1) || s.Contains(2) {
		t.Fatal("old files not evicted")
	}
	if s.References(1) != 1 || s.References(2) != 1 {
		t.Fatal("references lost on eviction")
	}
	if _, _, err := s.CommitBatch(ids(4)); err != nil {
		t.Fatal(err)
	}
	if s.References(4) != 2 {
		t.Fatalf("refs(4) = %d, want 2", s.References(4))
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	s := mustNew(t, 3, LRU)
	if _, _, err := s.CommitBatch(ids(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CommitBatch(ids(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CommitBatch(ids(3)); err != nil {
		t.Fatal(err)
	}
	// Touch 1 so 2 becomes LRU.
	if _, _, err := s.CommitBatch(ids(1)); err != nil {
		t.Fatal(err)
	}
	_, evicted, err := s.CommitBatch(ids(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	s := mustNew(t, 3, FIFO)
	for _, f := range []int{1, 2, 3} {
		if _, _, err := s.CommitBatch(ids(f)); err != nil {
			t.Fatal(err)
		}
	}
	// Touching 1 must NOT save it under FIFO.
	if _, _, err := s.CommitBatch(ids(1)); err != nil {
		t.Fatal(err)
	}
	_, evicted, err := s.CommitBatch(ids(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1] (oldest insert)", evicted)
	}
}

func TestBatchNeverEvictsItself(t *testing.T) {
	s := mustNew(t, 3, LRU)
	if _, _, err := s.CommitBatch(ids(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	fetched, evicted, err := s.CommitBatch(ids(3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 2 {
		t.Fatalf("fetched = %v", fetched)
	}
	for _, f := range ids(3, 4, 5) {
		if !s.Contains(f) {
			t.Fatalf("batch file %d not resident after commit", f)
		}
	}
	// 1 and 2 evicted, never 3/4/5.
	for _, v := range evicted {
		if v == 3 || v == 4 || v == 5 {
			t.Fatalf("evicted batch member %d", v)
		}
	}
}

func TestBatchLargerThanCapacityFails(t *testing.T) {
	s := mustNew(t, 2, LRU)
	if _, _, err := s.CommitBatch(ids(1, 2, 3)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestMissingAndOverlap(t *testing.T) {
	s := mustNew(t, 10, LRU)
	if _, _, err := s.CommitBatch(ids(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	miss := s.Missing(ids(2, 3, 4, 5))
	if len(miss) != 2 || miss[0] != 4 || miss[1] != 5 {
		t.Fatalf("missing = %v", miss)
	}
	if got := s.Overlap(ids(2, 3, 4, 5)); got != 2 {
		t.Fatalf("overlap = %d, want 2", got)
	}
	if got := s.Overlap(ids(7, 8)); got != 0 {
		t.Fatalf("overlap = %d, want 0", got)
	}
}

// Property: under any commit sequence, Len() <= capacity, every batch is
// fully resident right after its commit, and hits+misses == total file
// references.
func TestStoreInvariantsProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, ops []uint16) bool {
		capacity := 5 + int(capRaw)%50
		s, err := New(capacity, LRU)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var totalRefs int64
		for range ops {
			n := 1 + rng.Intn(capacity)
			batch := make([]workload.FileID, 0, n)
			seen := make(map[workload.FileID]struct{}, n)
			for len(batch) < n {
				f := workload.FileID(rng.Intn(200))
				if _, dup := seen[f]; dup {
					continue
				}
				seen[f] = struct{}{}
				batch = append(batch, f)
			}
			totalRefs += int64(len(batch))
			if _, _, err := s.CommitBatch(batch); err != nil {
				return false
			}
			if s.Len() > capacity {
				return false
			}
			for _, f := range batch {
				if !s.Contains(f) {
					return false
				}
			}
		}
		st := s.Stats()
		return st.Hits+st.Misses == totalRefs && st.Inserts == st.Misses
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestResidentRecencyOrder(t *testing.T) {
	s := mustNew(t, 5, LRU)
	if _, _, err := s.CommitBatch(ids(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	got := s.Resident()
	// Most recent insert first: 3, 2, 1.
	want := ids(3, 2, 1)
	if len(got) != 3 {
		t.Fatalf("resident = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resident = %v, want %v", got, want)
		}
	}
}

func TestPreloadAddsWithoutReferences(t *testing.T) {
	s := mustNew(t, 3, LRU)
	added, evicted := s.Preload(7)
	if !added || len(evicted) != 0 {
		t.Fatalf("added=%v evicted=%v", added, evicted)
	}
	if !s.Contains(7) {
		t.Fatal("preloaded file not resident")
	}
	if s.References(7) != 0 {
		t.Fatalf("preload counted a reference: %d", s.References(7))
	}
	// Idempotent on resident files.
	added, _ = s.Preload(7)
	if added {
		t.Fatal("re-preload reported added")
	}
	// Preload evicts when full.
	for _, f := range ids(1, 2, 3) {
		if _, _, err := s.CommitBatch([]workload.FileID{f}); err != nil {
			t.Fatal(err)
		}
	}
	added, evicted = s.Preload(9)
	if !added || len(evicted) != 1 {
		t.Fatalf("added=%v evicted=%v", added, evicted)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}
