package journal

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
)

// Tail-follow reading. A TailReader scans a live log file — one a Writer
// in the same process is still appending to — and yields fully validated
// frames in order. It is the read side of WAL replication: the leader's
// streamer walks the log with a TailReader and forwards each frame to
// followers.
//
// The contract with the concurrent Writer is deliberately conservative:
//   - A frame is yielded only once its header, payload, and CRC all
//     validate at the reader's current offset. Anything short or invalid
//     at the tail reads as ErrNoFrame ("not visible yet"): the caller
//     subscribes to Writer.AppendNotify BEFORE calling Next, waits, and
//     retries. Appends land with one write(2), so a frame becomes valid
//     atomically with respect to this reader.
//   - Rotation truncates the file under the reader's feet. The reader
//     reports ErrRotated when it can prove it (file shrank below its
//     offset); because the file can regrow before the reader stats it,
//     callers following a live Writer must ALSO snapshot
//     Writer.Rotations() before scanning and restart when it moves.

// ErrNoFrame reports that no complete, valid frame exists at the reader's
// offset yet. Transient by construction on a live log; wait and retry.
var ErrNoFrame = errors.New("journal: no complete frame at tail")

// ErrRotated reports that the log was truncated (rotated) behind the
// reader; its offset is meaningless. Reopen and resync from a snapshot.
var ErrRotated = errors.New("journal: log rotated under tail reader")

// TailReader reads validated frames from a (possibly live) log file.
type TailReader struct {
	f       *os.File
	off     int64  // offset of the next unread frame
	last    uint64 // last LSN yielded (or the afterLSN floor)
	scratch []byte
}

// OpenTail opens the log at path for tail-following and positions the
// reader so that Next yields only frames with LSN > after.
func OpenTail(path string, after uint64) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		// Magic not yet (re)written — treat as an empty log positioned at
		// its eventual start; Next reports ErrNoFrame until it appears.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return &TailReader{f: f, off: int64(len(logMagic)), last: after}, nil
		}
		f.Close()
		return nil, err
	}
	if string(magic) != string(logMagic) {
		f.Close()
		return nil, errors.New("journal: " + path + " is not a gridsched log (bad magic)")
	}
	return &TailReader{f: f, off: int64(len(logMagic)), last: after}, nil
}

// Next returns the next frame with LSN above the floor. The payload is
// valid until the following Next call. ErrNoFrame means "nothing more is
// visible yet"; ErrRotated means the file shrank below the reader.
func (t *TailReader) Next() (uint64, []byte, error) {
	for {
		lsn, payload, err := t.readFrame()
		if err != nil {
			return 0, nil, err
		}
		if lsn > t.last {
			t.last = lsn
			return lsn, payload, nil
		}
	}
}

// readFrame validates and consumes the frame at t.off, regardless of the
// LSN floor.
func (t *TailReader) readFrame() (uint64, []byte, error) {
	var header [frameHeaderLen]byte
	if _, err := t.f.ReadAt(header[:], t.off); err != nil {
		return 0, nil, t.tailErr(err)
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	crc := binary.LittleEndian.Uint32(header[4:8])
	lsn := binary.LittleEndian.Uint64(header[8:16])
	if length > MaxRecordLen {
		// On a live log a garbage header can only be a mid-rotation read;
		// the Rotations check in the caller's loop converts this stall
		// into a restart.
		return 0, nil, ErrNoFrame
	}
	if cap(t.scratch) < int(length) {
		t.scratch = make([]byte, length)
	}
	payload := t.scratch[:length]
	if _, err := t.f.ReadAt(payload, t.off+frameHeaderLen); err != nil {
		return 0, nil, t.tailErr(err)
	}
	if frameCRC(lsn, payload) != crc {
		return 0, nil, ErrNoFrame
	}
	t.off += frameHeaderLen + int64(length)
	return lsn, payload, nil
}

// tailErr classifies a short read: the file either has not grown to the
// frame yet (ErrNoFrame) or was truncated below the reader (ErrRotated).
func (t *TailReader) tailErr(err error) error {
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return err
	}
	st, serr := t.f.Stat()
	if serr == nil && st.Size() < t.off {
		return ErrRotated
	}
	return ErrNoFrame
}

// Close releases the file handle.
func (t *TailReader) Close() error { return t.f.Close() }
