package journal_test

import (
	"os"
	"path/filepath"
	"testing"

	"gridsched/internal/journal"
)

// fuzzSeedLog builds a small valid log (with an optional garbage tail) to
// seed the corpus with structurally interesting inputs.
func fuzzSeedLog(f *testing.F, payloads []string, tail []byte) {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.log")
	w, err := journal.OpenWriter(path, journal.SyncNever, 0, 0, 0, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := w.Append([]byte(p)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(data, tail...))
}

// FuzzReadFrame throws arbitrary bytes at the WAL frame decoder and checks
// the recovery invariants ReadLog promises no matter the input: no panic,
// a ValidSize that never exceeds the file, a validated prefix that
// re-reads to the identical record sequence, and a prefix OpenWriter can
// truncate to and keep appending after — i.e. any torn, bit-flipped, or
// adversarial log converges to a healthy one. CI runs this as a 30-second
// smoke (-fuzztime); longer local runs just go deeper.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GSWAL001"))
	f.Add([]byte("GSWAL001\x00\x00\x00"))
	f.Add([]byte("not a log at all"))
	fuzzSeedLog(f, []string{`{"op":"submit"}`, `{"op":"dispatch","task":3}`}, nil)
	fuzzSeedLog(f, []string{"x"}, []byte{0x55, 0xAA, 0x00, 0x01, 0x02})
	fuzzSeedLog(f, []string{""}, []byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var lsns []uint64
		info, err := journal.ReadLog(path, 0, func(lsn uint64, payload []byte) error {
			lsns = append(lsns, lsn)
			return nil
		})
		if err != nil {
			return // rejected (bad magic): a legitimate outcome, not a log
		}
		if info.ValidSize > int64(len(data)) {
			t.Fatalf("ValidSize %d beyond %d input bytes", info.ValidSize, len(data))
		}
		if info.Records != len(lsns) {
			t.Fatalf("Records %d but callback saw %d", info.Records, len(lsns))
		}
		for i := 1; i < len(lsns); i++ {
			if lsns[i] <= lsns[i-1] {
				t.Fatalf("non-monotonic LSNs delivered: %v", lsns)
			}
		}
		if len(lsns) > 0 && info.LastLSN != lsns[len(lsns)-1] {
			t.Fatalf("LastLSN %d, last delivered %d", info.LastLSN, lsns[len(lsns)-1])
		}

		// The validated prefix must re-read to the identical sequence.
		prefix := filepath.Join(dir, "prefix.log")
		if err := os.WriteFile(prefix, data[:info.ValidSize], 0o644); err != nil {
			t.Fatal(err)
		}
		reread, err := journal.ReadLog(prefix, 0, nil)
		if err != nil {
			t.Fatalf("validated prefix rejected on re-read: %v", err)
		}
		if reread.Records != info.Records || reread.LastLSN != info.LastLSN || reread.ValidSize != info.ValidSize {
			t.Fatalf("prefix re-read diverged: %+v vs %+v", reread, info)
		}

		// OpenWriter must accept the recovered (lastLSN, validSize) pair,
		// truncate the garbage, and keep the LSN sequence appendable.
		w, err := journal.OpenWriter(path, journal.SyncNever, 0, info.LastLSN, info.ValidSize, nil)
		if err != nil {
			t.Fatalf("OpenWriter over recovered prefix: %v", err)
		}
		lsn, err := w.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if lsn != info.LastLSN+1 {
			t.Fatalf("appended LSN %d, want %d", lsn, info.LastLSN+1)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		final, err := journal.ReadLog(path, 0, nil)
		if err != nil || final.Records != info.Records+1 || final.Torn {
			t.Fatalf("post-recovery log unhealthy: %+v, %v", final, err)
		}
	})
}
