package journal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridsched/internal/journal"
)

func openTailWriter(t *testing.T) (*journal.Writer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := journal.OpenWriter(path, journal.SyncNever, 0, 0, 0, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w, path
}

// TestTailReaderFollowsWriter covers the tail-follow contract: frames
// appear to the reader exactly once, in LSN order, and a drained tail
// reports ErrNoFrame rather than blocking or erroring.
func TestTailReaderFollowsWriter(t *testing.T) {
	w, path := openTailWriter(t)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(fmt.Appendf(nil, "rec-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := journal.OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 5; i++ {
		lsn, payload, err := tr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if lsn != uint64(i+1) || string(payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("frame %d: lsn %d payload %q", i, lsn, payload)
		}
	}
	if _, _, err := tr.Next(); !errors.Is(err, journal.ErrNoFrame) {
		t.Fatalf("drained tail: %v (want ErrNoFrame)", err)
	}
	// New appends become visible to the same reader.
	if _, err := w.Append([]byte("late")); err != nil {
		t.Fatal(err)
	}
	lsn, payload, err := tr.Next()
	if err != nil || lsn != 6 || string(payload) != "late" {
		t.Fatalf("after late append: lsn %d payload %q err %v", lsn, payload, err)
	}
}

// TestTailReaderResumesAfter pins the `after` contract: frames at or
// below the resume point are skipped, not redelivered.
func TestTailReaderResumesAfter(t *testing.T) {
	w, path := openTailWriter(t)
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := journal.OpenTail(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	lsn, _, err := tr.Next()
	if err != nil || lsn != 3 {
		t.Fatalf("resume after 2: first frame lsn %d err %v", lsn, err)
	}
}

// TestTailReaderDetectsRotation: rotation truncates the log, which must
// surface as ErrRotated (plus a Rotations() bump for in-process
// followers), never as silently re-reading old offsets.
func TestTailReaderDetectsRotation(t *testing.T) {
	w, path := openTailWriter(t)
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := journal.OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := tr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	epoch := w.Rotations()
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.Rotations() != epoch+1 {
		t.Fatalf("Rotations() = %d, want %d", w.Rotations(), epoch+1)
	}
	if _, _, err := tr.Next(); !errors.Is(err, journal.ErrRotated) {
		t.Fatalf("after rotation: %v (want ErrRotated)", err)
	}
}

// TestTailReaderIgnoresTornTail: a torn (partial or corrupt) frame at the
// end of the log is indistinguishable from a frame still being written,
// so the reader reports ErrNoFrame and re-reads the same offset later.
func TestTailReaderIgnoresTornTail(t *testing.T) {
	w, path := openTailWriter(t)
	if _, err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: header bytes only, then garbage CRC.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := journal.OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if lsn, _, err := tr.Next(); err != nil || lsn != 1 {
		t.Fatalf("good frame: lsn %d err %v", lsn, err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := tr.Next(); !errors.Is(err, journal.ErrNoFrame) {
			t.Fatalf("torn tail read %d: %v (want ErrNoFrame)", i, err)
		}
	}
}

// TestAppendNotifyWakesWaiters: AppendNotify's channel closes on append,
// rotation, and shutdown — everything a parked tail follower must wake
// for.
func TestAppendNotifyWakesWaiters(t *testing.T) {
	w, _ := openTailWriter(t)
	wait := func(ch <-chan struct{}, what string) {
		t.Helper()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("notify channel never closed after %s", what)
		}
	}
	ch := w.AppendNotify()
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	wait(ch, "append")
	ch = w.AppendNotify()
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	wait(ch, "rotate")
	ch = w.AppendNotify()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wait(ch, "close")
}
