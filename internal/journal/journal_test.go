package journal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridsched/internal/journal"
)

func openWriter(t *testing.T, path string, mode journal.Mode, lastLSN uint64, validSize int64) *journal.Writer {
	t.Helper()
	w, err := journal.OpenWriter(path, mode, time.Millisecond, lastLSN, validSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func readAll(t *testing.T, path string, afterLSN uint64) (journal.LogInfo, []string) {
	t.Helper()
	var got []string
	info, err := journal.ReadLog(path, afterLSN, func(lsn uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", lsn, payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return info, got
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openWriter(t, path, journal.SyncAlways, 0, 0)
	for i := 0; i < 5; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("rec%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, got := readAll(t, path, 0)
	if info.Torn || info.LastLSN != 5 || info.Records != 5 {
		t.Fatalf("info = %+v", info)
	}
	want := []string{"1:rec0", "2:rec1", "3:rec2", "4:rec3", "5:rec4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// afterLSN skips the covered prefix.
	if _, got := readAll(t, path, 3); len(got) != 2 || got[0] != "4:rec3" {
		t.Fatalf("after 3: %v", got)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openWriter(t, path, journal.SyncNever, 0, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	for _, tail := range [][]byte{
		{0x10}, // short header
		{0x10, 0, 0, 0, 1, 2, 3, 4, 9, 0, 0, 0, 0, 0, 0, 0, 'x'}, // short payload
	} {
		whole, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(append([]byte{}, whole...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		info, got := readAll(t, path, 0)
		if !info.Torn || len(got) != 3 || info.LastLSN != 3 {
			t.Fatalf("tail %v: info %+v records %v", tail, info, got)
		}
		// Reopening truncates the garbage and appends cleanly after it.
		w := openWriter(t, path, journal.SyncNever, info.LastLSN, info.ValidSize)
		if _, err := w.Append([]byte("next")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		info, got = readAll(t, path, 0)
		if info.Torn || len(got) != 4 || got[3] != "4:next" {
			t.Fatalf("after reopen: info %+v records %v", info, got)
		}
		// Restore the 3-record file for the next tail variant.
		if err := os.WriteFile(path, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornMagicSelfHeals: a crash during the very first OpenWriter can
// leave a short header; the log must reset itself, not brick recovery.
func TestTornMagicSelfHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("GSW"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, got := readAll(t, path, 0)
	if !info.Torn || info.ValidSize != 0 || len(got) != 0 {
		t.Fatalf("info %+v records %v", info, got)
	}
	w := openWriter(t, path, journal.SyncNever, info.LastLSN, info.ValidSize)
	if _, err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, got = readAll(t, path, 0)
	if info.Torn || len(got) != 1 || got[0] != "1:fresh" {
		t.Fatalf("after self-heal: info %+v records %v", info, got)
	}
}

func TestCorruptPayloadStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openWriter(t, path, journal.SyncNever, 0, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last record's payload: CRC must catch it.
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	info, got := readAll(t, path, 0)
	if !info.Torn || len(got) != 2 || info.LastLSN != 2 {
		t.Fatalf("info %+v records %v", info, got)
	}
}

func TestRotateContinuesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openWriter(t, path, journal.SyncNever, 0, 0)
	if _, err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("post-rotate lsn = %d, want 3", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, got := readAll(t, path, 0)
	if info.Torn || len(got) != 1 || got[0] != "3:c" {
		t.Fatalf("info %+v records %v", info, got)
	}
}

func TestAbandonKeepsAppendedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := openWriter(t, path, journal.SyncBatch, 0, 0)
	if _, err := w.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	w.Abandon() // SIGKILL equivalent: no sync, no snapshot
	info, got := readAll(t, path, 0)
	if info.Torn || len(got) != 1 || got[0] != "1:kept" {
		t.Fatalf("info %+v records %v", info, got)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("append after abandon succeeded")
	}
}

func TestGroupCommitConcurrentWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	var met journal.Metrics
	w, err := journal.OpenWriter(path, journal.SyncAlways, time.Millisecond, 0, 0, &met)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append([]byte(fmt.Sprintf("r%d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.WaitDurable(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := met.Records.Load(); got != n {
		t.Fatalf("records metric = %d, want %d", got, n)
	}
	// Group commit: far fewer fsyncs than records (usually a handful).
	if got := met.Fsyncs.Load(); got > n {
		t.Fatalf("fsyncs = %d, expected batching below %d", got, n)
	}
	info, got := readAll(t, path, 0)
	if info.Torn || len(got) != n {
		t.Fatalf("info %+v, %d records", info, len(got))
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	if err := journal.WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := journal.WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("two")) {
		t.Fatalf("content %q", data)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]journal.Mode{
		"always": journal.SyncAlways,
		"batch":  journal.SyncBatch,
		"":       journal.SyncBatch,
		"never":  journal.SyncNever,
	} {
		got, err := journal.ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := journal.ParseMode("sometimes"); err == nil {
		t.Fatal("accepted bad mode")
	}
}

// TestAppendBatchFramesConsecutively: the commit stage's group append must
// be indistinguishable, on disk, from the same records appended one at a
// time — consecutive LSNs, every frame CRC-valid, one durability wait
// covering the lot.
func TestAppendBatchFramesConsecutively(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.log")
	w, err := journal.OpenWriter(path, journal.SyncAlways, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.AppendBatch([][]byte{[]byte("a"), []byte("bb"), []byte("")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first LSN %d, want 1", first)
	}
	if lsn, err := w.Append([]byte("solo")); err != nil || lsn != 4 {
		t.Fatalf("append after batch: lsn %d, %v (want 4)", lsn, err)
	}
	if err := w.WaitDurable(4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	info, err := journal.ReadLog(path, 0, func(lsn uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 || info.LastLSN != 4 || info.Torn {
		t.Fatalf("read back %+v", info)
	}
	want := []string{"a", "bb", "", "solo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := w.AppendBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
