// Package journal implements the persistence substrate of gridschedd
// (internal/service): an append-only write-ahead log of framed records plus
// an atomically-replaced snapshot file.
//
// # Log format
//
// A log file starts with the 8-byte magic "GSWAL001". Each record is
// framed as
//
//	uint32  payload length (little endian)
//	uint32  CRC-32C over (lsn bytes ++ payload)
//	uint64  LSN (little endian)
//	bytes   payload
//
// LSNs are assigned by the writer, strictly increasing, and survive log
// rotation (a snapshot records the LSN it covers; the log restarts empty
// but the numbering continues), so a reader can skip records a snapshot
// already covers. The payload is opaque to this package — the service
// journals small JSON documents.
//
// # Durability
//
// Append writes the frame to the file with a single write(2), so an
// acknowledged record survives a crash of the process (SIGKILL included)
// as soon as Append returns: the bytes are in the OS page cache. What the
// fsync mode controls is durability against a crash of the *machine*:
//
//   - SyncAlways: WaitDurable blocks until an fsync covers the record.
//     Concurrent waiters are group-committed: one fsync acknowledges every
//     record appended before it started.
//   - SyncBatch: WaitDurable returns immediately; a background flusher
//     fsyncs at a fixed interval (plus at rotation and close), bounding
//     the machine-crash loss window to that interval.
//   - SyncNever: no fsync except at rotation; for tests and benchmarks.
//
// A write or fsync failure is terminal: the writer poisons itself and
// every subsequent Append/WaitDurable returns the error. The service
// treats that as fail-stop — better to crash and recover from the last
// durable state than to acknowledge mutations the log did not keep.
//
// # Torn writes
//
// A crash can tear the final record (short write). ReadLog validates
// frames in order and stops at the first bad length, CRC, or
// non-monotonic LSN; OpenWriter then truncates the file back to the valid
// prefix, so the log converges to exactly the acknowledged-and-retained
// record sequence.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the fsync policy of a Writer (see the package comment).
type Mode int

// Fsync modes.
const (
	SyncBatch Mode = iota // default: interval-batched fsync
	SyncAlways
	SyncNever
)

func (m Mode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode resolves the -fsync flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync mode %q (want always, batch or never)", s)
	}
}

var logMagic = []byte("GSWAL001")

const (
	frameHeaderLen = 4 + 4 + 8
	// MaxRecordLen bounds one payload; the largest service record is a job
	// submission embedding its workload, itself bounded by the HTTP body
	// limit (64 MiB).
	MaxRecordLen = 128 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameCRC(lsn uint64, payload []byte) uint32 {
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], lsn)
	return crc32.Update(crc32.Checksum(l[:], crcTable), crcTable, payload)
}

// ErrClosed is returned by operations on a closed (or crashed) writer.
var ErrClosed = errors.New("journal: writer closed")

// File is the handle a Writer appends to. *os.File satisfies it; tests
// substitute a fault-injecting implementation (internal/faultinject.File)
// to prove that write and fsync failures poison the writer instead of
// silently acknowledging records the log did not keep.
type File interface {
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// Metrics receives the writer's activity counters; a nil *Metrics disables
// reporting. The fields alias the service's /metrics gauges.
type Metrics struct {
	Records atomic.Int64 // records appended
	Bytes   atomic.Int64 // frame bytes written
	Fsyncs  atomic.Int64 // fsync(2) calls issued
}

// Writer appends framed records to one log file.
type Writer struct {
	mode     Mode
	interval time.Duration
	met      *Metrics

	mu       sync.Mutex // file writes, rotation
	f        File
	scratch  []byte
	appended atomic.Uint64 // last LSN written

	syncMu  sync.Mutex
	syncCh  *sync.Cond
	durable uint64 // last LSN covered by an fsync
	err     error  // terminal write/sync failure, or ErrClosed
	closed  bool   // shutdown ran; distinct from err, which poison also sets

	// rotations counts Rotate calls. Tail-following readers (the
	// replication streamer) snapshot it before scanning and restart when
	// it moves: a rotation invalidates every byte offset they held.
	rotations atomic.Uint64

	// notify is closed and replaced after every successful append, so a
	// tail-following reader can block for "new frames" without polling.
	notifyMu sync.Mutex
	notify   chan struct{}

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// OpenWriter opens (creating if needed) the log at path for appending.
// lastLSN seeds the LSN sequence (pass the last LSN recovered by ReadLog,
// or 0 for a fresh log); validSize is the length of the validated prefix —
// anything beyond it (a torn tail) is truncated away. A validSize below
// the header length means ReadLog found no intact header (a crash tore
// the very first write), so the file is reset to an empty log — callers
// must pass ReadLog's ValidSize, never a guess, or risk discarding a
// healthy log. met may be nil.
func OpenWriter(path string, mode Mode, interval time.Duration, lastLSN uint64, validSize int64, met *Metrics) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return OpenWriterFile(f, mode, interval, lastLSN, validSize, met)
}

// OpenWriterFile is OpenWriter over an already-open File — the seam that
// lets fault-injection tests hand the writer a handle whose writes and
// fsyncs fail on cue. On error the file is closed.
func OpenWriterFile(f File, mode Mode, interval time.Duration, lastLSN uint64, validSize int64, met *Metrics) (*Writer, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case validSize > st.Size():
		f.Close()
		return nil, fmt.Errorf("journal: valid prefix %d beyond file size %d", validSize, st.Size())
	case st.Size() == 0 || validSize < int64(len(logMagic)):
		// Fresh file — or a header torn by a crash during the very first
		// open (ReadLog reports ValidSize 0 for it). Rewrite the magic so
		// the log self-heals instead of bricking every restart.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(logMagic); err != nil {
			f.Close()
			return nil, err
		}
		validSize = int64(len(logMagic))
	case validSize < st.Size():
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		mode:     mode,
		interval: interval,
		met:      met,
		f:        f,
		notify:   make(chan struct{}),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.appended.Store(lastLSN)
	w.durable = lastLSN
	w.syncCh = sync.NewCond(&w.syncMu)
	go w.flusher()
	return w, nil
}

// Append frames payload, assigns it the next LSN, and writes it with one
// write(2). The record is process-crash durable when Append returns;
// machine-crash durability is WaitDurable's job.
func (w *Writer) Append(payload []byte) (uint64, error) {
	return w.AppendBatch([][]byte{payload})
}

// AppendBatch frames every payload as consecutive records and writes the
// whole group with ONE write(2) — the group-append primitive behind the
// service's commit stage, where records accumulated while a previous
// write was in flight land together. Returns the LSN of the first record;
// the i-th payload has LSN first+i. All-or-nothing: a short or failed
// write poisons the writer (the service treats that as fail-stop), so no
// prefix of the batch is ever acknowledged piecemeal.
func (w *Writer) AppendBatch(payloads [][]byte) (uint64, error) {
	need := 0
	for _, p := range payloads {
		if len(p) > MaxRecordLen {
			return 0, fmt.Errorf("journal: record %d bytes exceeds cap %d", len(p), MaxRecordLen)
		}
		need += frameHeaderLen + len(p)
	}
	if len(payloads) == 0 {
		return 0, fmt.Errorf("journal: empty batch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.failed(); err != nil {
		return 0, err
	}
	first := w.appended.Load() + 1
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	off := 0
	for i, p := range payloads {
		lsn := first + uint64(i)
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(p)))
		binary.LittleEndian.PutUint32(buf[off+4:off+8], frameCRC(lsn, p))
		binary.LittleEndian.PutUint64(buf[off+8:off+16], lsn)
		copy(buf[off+frameHeaderLen:], p)
		off += frameHeaderLen + len(p)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.poison(err)
		return 0, err
	}
	w.appended.Store(first + uint64(len(payloads)) - 1)
	if w.met != nil {
		w.met.Records.Add(int64(len(payloads)))
		w.met.Bytes.Add(int64(need))
	}
	w.notifyAppend()
	return first, nil
}

// notifyAppend wakes every AppendNotify waiter (close-and-replace, the
// same lost-wakeup-free discipline as the service's long-poll hub).
func (w *Writer) notifyAppend() {
	w.notifyMu.Lock()
	close(w.notify)
	w.notify = make(chan struct{})
	w.notifyMu.Unlock()
}

// AppendNotify returns a channel closed after the next append (or
// rotation, or shutdown — any event that should make a tail follower
// look again). Subscribe BEFORE checking for new frames, then wait.
func (w *Writer) AppendNotify() <-chan struct{} {
	w.notifyMu.Lock()
	ch := w.notify
	w.notifyMu.Unlock()
	return ch
}

// Rotations counts Rotate calls; tail followers snapshot it to detect
// that their byte offsets went stale.
func (w *Writer) Rotations() uint64 { return w.rotations.Load() }

// WaitDurable blocks until the record at lsn is fsync-covered (SyncAlways)
// or returns immediately (SyncBatch, SyncNever). Callers must not hold
// locks that Append contends on: this is where group commit happens.
func (w *Writer) WaitDurable(lsn uint64) error {
	if w.mode != SyncAlways {
		w.syncMu.Lock()
		err := w.err
		w.syncMu.Unlock()
		return err
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.durable < lsn && w.err == nil {
		w.syncCh.Wait()
	}
	return w.err
}

// Sync forces an fsync covering everything appended so far.
func (w *Writer) Sync() error {
	return w.syncTo(w.appended.Load())
}

func (w *Writer) syncTo(target uint64) error {
	w.syncMu.Lock()
	if w.err != nil || w.durable >= target {
		err := w.err
		w.syncMu.Unlock()
		return err
	}
	w.syncMu.Unlock()

	w.mu.Lock()
	if err := w.failed(); err != nil {
		w.mu.Unlock()
		return err
	}
	// Re-read under mu: cover everything written before this fsync.
	target = w.appended.Load()
	err := w.f.Sync()
	w.mu.Unlock()
	if w.met != nil {
		w.met.Fsyncs.Add(1)
	}
	if err != nil {
		w.poison(err)
		return err
	}

	w.syncMu.Lock()
	if target > w.durable {
		w.durable = target
	}
	w.syncCh.Broadcast()
	w.syncMu.Unlock()
	return nil
}

// flusher services group commits (SyncAlways) and the batch interval
// (SyncBatch). SyncNever still runs it, but only wake requests (none) and
// stop reach it.
func (w *Writer) flusher() {
	defer close(w.done)
	var tick <-chan time.Time
	if w.mode == SyncBatch {
		t := time.NewTicker(w.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.stop:
			return
		case <-w.wake:
		case <-tick:
		}
		target := w.appended.Load()
		w.syncMu.Lock()
		behind := w.durable < target && w.err == nil
		w.syncMu.Unlock()
		if behind {
			_ = w.syncTo(target) // errors poison the writer; waiters see them
		}
	}
}

// Rotate empties the log after a snapshot made its contents redundant. The
// LSN sequence continues; the truncation is fsynced so a machine crash
// cannot resurrect pre-snapshot records behind the snapshot's back.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.failed(); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(len(logMagic))); err != nil {
		w.poison(err)
		return err
	}
	if _, err := w.f.Seek(int64(len(logMagic)), io.SeekStart); err != nil {
		w.poison(err)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.poison(err)
		return err
	}
	if w.met != nil {
		w.met.Fsyncs.Add(1)
	}
	w.syncMu.Lock()
	w.durable = w.appended.Load()
	w.syncCh.Broadcast()
	w.syncMu.Unlock()
	w.rotations.Add(1)
	w.notifyAppend()
	return nil
}

// LastLSN returns the LSN of the most recently appended record.
func (w *Writer) LastLSN() uint64 { return w.appended.Load() }

// Close syncs (unless SyncNever) and closes the file. Idempotent.
func (w *Writer) Close() error {
	var syncErr error
	if w.mode != SyncNever {
		syncErr = w.Sync()
	}
	return errors.Join(syncErr, w.shutdown(true))
}

// Abandon closes the file descriptor without syncing — the moral
// equivalent of SIGKILL, used by crash-recovery tests. Appended records
// remain readable (they reached the page cache) but nothing more is
// flushed.
func (w *Writer) Abandon() {
	_ = w.shutdown(false)
}

func (w *Writer) shutdown(reportCloseErr bool) error {
	w.syncMu.Lock()
	already := w.closed
	w.closed = true
	if w.err == nil {
		w.err = ErrClosed
	}
	w.syncCh.Broadcast()
	w.syncMu.Unlock()
	if already {
		return nil
	}
	w.notifyAppend() // unblock tail followers so they observe the close
	close(w.stop)
	<-w.done
	w.mu.Lock()
	err := w.f.Close()
	w.mu.Unlock()
	if reportCloseErr {
		return err
	}
	return nil
}

// failed reports the terminal error, if any. Callers hold w.mu.
func (w *Writer) failed() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.err
}

// poison records a terminal I/O failure.
func (w *Writer) poison(err error) {
	w.syncMu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("journal: writer failed: %w", err)
	}
	w.syncCh.Broadcast()
	w.syncMu.Unlock()
	w.notifyAppend() // tail followers must notice the failure, not hang
}

// LogInfo describes what ReadLog recovered.
type LogInfo struct {
	// ValidSize is the byte length of the validated record prefix; pass it
	// to OpenWriter, which truncates anything beyond it.
	ValidSize int64
	// LastLSN is the highest LSN read (0 when the log held no records).
	LastLSN uint64
	// Records counts the records delivered to the callback.
	Records int
	// Torn reports that the file extended past the valid prefix with a
	// record that failed validation — the signature of a crash mid-append.
	Torn bool
}

// ReadLog scans the log at path, invoking fn for every record with
// LSN > afterLSN, in order. Validation stops at the first torn or corrupt
// frame: everything before it is the recovered log, everything after is
// discarded by the next OpenWriter. A missing file is an empty log. The
// payload passed to fn is only valid for the duration of the call.
func ReadLog(path string, afterLSN uint64, fn func(lsn uint64, payload []byte) error) (LogInfo, error) {
	var info LogInfo
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return info, nil
	}
	if err != nil {
		return info, err
	}
	defer f.Close()

	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		// Even the magic is torn; treat as empty (a fresh OpenWriter
		// rewrites it).
		info.Torn = true
		return info, nil
	}
	if string(magic) != string(logMagic) {
		return info, fmt.Errorf("journal: %s is not a gridsched log (bad magic)", path)
	}
	info.ValidSize = int64(len(logMagic))

	r := &countingReader{r: f, n: info.ValidSize}
	header := make([]byte, frameHeaderLen)
	var payload []byte
	lastLSN := uint64(0)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			info.Torn = !errors.Is(err, io.EOF)
			return info, nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		lsn := binary.LittleEndian.Uint64(header[8:16])
		if length > MaxRecordLen || lsn <= lastLSN {
			info.Torn = true
			return info, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			info.Torn = true
			return info, nil
		}
		if frameCRC(lsn, payload) != crc {
			info.Torn = true
			return info, nil
		}
		lastLSN = lsn
		info.ValidSize = r.n
		info.LastLSN = lsn
		if lsn > afterLSN {
			info.Records++
			if fn != nil {
				if err := fn(lsn, payload); err != nil {
					return info, err
				}
			}
		}
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename over path, fsync the directory.
// Readers see either the old or the new content, never a mix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }() // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
