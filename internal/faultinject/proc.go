package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// lockedBuffer makes the stderr capture safe to read while the process
// is still writing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Proc is a subprocess under kill -9 control. The failover gauntlet runs
// each gridschedd under one of these and murders the leader mid-commit.
type Proc struct {
	cmd    *exec.Cmd
	stderr lockedBuffer
	waitCh chan error
}

// StartProc launches bin with args; stderr is captured for post-mortems.
func StartProc(bin string, args ...string) (*Proc, error) {
	p := &Proc{cmd: exec.Command(bin, args...), waitCh: make(chan error, 1)}
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	go func() { p.waitCh <- p.cmd.Wait() }()
	return p, nil
}

// Kill9 delivers SIGKILL — no shutdown hooks, no final fsync, the real
// crash — and reaps the process. Errors if it already exited (a gauntlet
// that kills a corpse is not testing what it thinks it is).
func (p *Proc) Kill9() error {
	select {
	case err := <-p.waitCh:
		return fmt.Errorf("faultinject: process already exited (%v); stderr:\n%s", err, p.stderr.String())
	default:
	}
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.waitCh
	return nil
}

// Stop asks politely (SIGTERM), escalating to SIGKILL after grace.
func (p *Proc) Stop(grace time.Duration) error {
	select {
	case <-p.waitCh:
		return nil
	default:
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.waitCh:
		return nil
	case <-time.After(grace):
		_ = p.cmd.Process.Kill()
		<-p.waitCh
		return errors.New("faultinject: process ignored SIGTERM, killed")
	}
}

// Alive reports whether the process is still running.
func (p *Proc) Alive() bool {
	select {
	case err := <-p.waitCh:
		p.waitCh <- err
		return false
	default:
		return true
	}
}

// Stderr returns everything the process wrote to stderr so far.
func (p *Proc) Stderr() string { return p.stderr.String() }
