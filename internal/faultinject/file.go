package faultinject

import (
	"os"
	"sync"

	"gridsched/internal/journal"
)

// File wraps a journal.File and fails operations on cue. Zero value of
// the fault schedule means "pass everything through".
type File struct {
	inner journal.File

	mu          sync.Mutex
	writesLeft  int  // writes remaining before injection; -1 = unlimited
	failWrites  bool // when armed and writesLeft hits 0, writes fail
	failSyncs   bool
	writeCalls  int
	syncCalls   int
	failedCalls int
}

// WrapFile wraps f; the result satisfies journal.File and can be handed
// to journal.OpenWriterFile.
func WrapFile(f journal.File) *File {
	return &File{inner: f, writesLeft: -1}
}

// OpenFile opens path the way journal.OpenWriter would and wraps it.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return WrapFile(f), nil
}

// FailWritesAfter lets the next n writes succeed and fails every write
// after them with ErrInjected.
func (f *File) FailWritesAfter(n int) {
	f.mu.Lock()
	f.failWrites = true
	f.writesLeft = n
	f.mu.Unlock()
}

// FailSyncs arms (or disarms) fsync failure: while armed every Sync
// returns ErrInjected.
func (f *File) FailSyncs(on bool) {
	f.mu.Lock()
	f.failSyncs = on
	f.mu.Unlock()
}

// Restore clears the entire fault schedule.
func (f *File) Restore() {
	f.mu.Lock()
	f.failWrites = false
	f.failSyncs = false
	f.writesLeft = -1
	f.mu.Unlock()
}

// Injected reports how many operations failed by injection.
func (f *File) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failedCalls
}

func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.writeCalls++
	inject := f.failWrites && f.writesLeft == 0
	if f.failWrites && f.writesLeft > 0 {
		f.writesLeft--
	}
	if inject {
		f.failedCalls++
	}
	f.mu.Unlock()
	if inject {
		return 0, ErrInjected
	}
	return f.inner.Write(p)
}

func (f *File) Sync() error {
	f.mu.Lock()
	f.syncCalls++
	inject := f.failSyncs
	if inject {
		f.failedCalls++
	}
	f.mu.Unlock()
	if inject {
		return ErrInjected
	}
	return f.inner.Sync()
}

func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *File) Truncate(size int64) error { return f.inner.Truncate(size) }

func (f *File) Stat() (os.FileInfo, error) { return f.inner.Stat() }

func (f *File) Close() error { return f.inner.Close() }
