package faultinject

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is a shared fault switchboard for wrapped connections. One
// Faults value typically governs every connection of a Listener or
// Proxy, so a single Partition() call blackholes the whole link.
type Faults struct {
	partitioned atomic.Bool // reads and writes block (blackhole)
	failFast    atomic.Bool // reads and writes error immediately
	delayNanos  atomic.Int64
}

// Partition blackholes the link: reads and writes on affected
// connections block until Restore or the connection closes — the
// behavior of a yanked cable, which TCP surfaces only after long
// timeouts. Use FailFast for the connection-refused flavor.
func (f *Faults) Partition() { f.partitioned.Store(true) }

// FailFast makes every read and write fail immediately with ErrInjected.
func (f *Faults) FailFast() { f.failFast.Store(true) }

// Delay adds d of latency to every read and write.
func (f *Faults) Delay(d time.Duration) { f.delayNanos.Store(int64(d)) }

// Restore clears all faults.
func (f *Faults) Restore() {
	f.partitioned.Store(false)
	f.failFast.Store(false)
	f.delayNanos.Store(0)
}

// Conn wraps a net.Conn with the shared fault switchboard.
type Conn struct {
	net.Conn
	faults *Faults

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn wraps c; a nil faults gets a private switchboard.
func WrapConn(c net.Conn, faults *Faults) *Conn {
	if faults == nil {
		faults = &Faults{}
	}
	return &Conn{Conn: c, faults: faults, closed: make(chan struct{})}
}

// Faults returns the connection's switchboard.
func (c *Conn) Faults() *Faults { return c.faults }

// gate applies the current fault schedule before an I/O op. It returns
// ErrInjected for fail-fast faults and blocks for partitions.
func (c *Conn) gate() error {
	if d := time.Duration(c.faults.delayNanos.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-c.closed:
			return net.ErrClosed
		}
	}
	for c.faults.partitioned.Load() {
		select {
		case <-time.After(5 * time.Millisecond):
		case <-c.closed:
			return net.ErrClosed
		}
	}
	if c.faults.failFast.Load() {
		return ErrInjected
	}
	return nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Listener wraps a net.Listener so every accepted connection shares one
// fault switchboard.
type Listener struct {
	net.Listener
	faults *Faults

	mu    sync.Mutex
	conns []*Conn
}

// WrapListener wraps ln; a nil faults gets a private switchboard.
func WrapListener(ln net.Listener, faults *Faults) *Listener {
	if faults == nil {
		faults = &Faults{}
	}
	return &Listener{Listener: ln, faults: faults}
}

// Faults returns the listener's switchboard.
func (l *Listener) Faults() *Faults { return l.faults }

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	wc := WrapConn(c, l.faults)
	l.mu.Lock()
	l.conns = append(l.conns, wc)
	l.mu.Unlock()
	return wc, nil
}

// CloseConns tears down every accepted connection (the crashed-peer
// signature: RST now, not a timeout later), leaving the listener up.
func (l *Listener) CloseConns() {
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Proxy is a byte-shoveling TCP proxy whose link obeys a fault
// switchboard — the tool for partitioning two real processes that think
// they are directly connected.
type Proxy struct {
	ln     net.Listener
	target string
	faults *Faults

	mu    sync.Mutex
	conns []net.Conn
	done  chan struct{}
}

// NewProxy listens on addr ("127.0.0.1:0" for an ephemeral port) and
// forwards every connection to target.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, faults: &Faults{}, done: make(chan struct{})}
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address — point the client here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Faults returns the link's switchboard.
func (p *Proxy) Faults() *Faults { return p.faults }

func (p *Proxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = c.Close()
			continue
		}
		down := WrapConn(c, p.faults)
		p.track(down, up)
		go shovel(down, up)
		go shovel(up, down)
	}
}

func (p *Proxy) track(conns ...net.Conn) {
	p.mu.Lock()
	select {
	case <-p.done:
		p.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		return
	default:
	}
	p.conns = append(p.conns, conns...)
	p.mu.Unlock()
}

func shovel(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	_ = dst.Close()
	_ = src.Close()
}

// CloseConns drops every in-flight connection while keeping the proxy
// accepting new ones.
func (p *Proxy) CloseConns() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Close stops the proxy and drops all connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	p.mu.Unlock()
	_ = p.ln.Close()
	p.CloseConns()
}
