// Package faultinject is the fault-injection harness behind the
// replication and durability gauntlets. It deliberately breaks the three
// substrates gridschedd depends on, on cue and deterministically:
//
//   - File wraps a journal.File and fails writes or fsyncs on demand,
//     proving the writer poisons itself instead of acknowledging records
//     the log did not keep.
//   - Conn / Listener / Proxy wrap net connections with droppable,
//     delayable, partitionable behavior, so tests can blackhole a
//     replication stream without the kernel's help.
//   - Proc runs a subprocess under kill -9 control, the only honest way
//     to test crash recovery and leader failover.
//
// Everything here is test infrastructure: no production code path
// imports this package.
package faultinject

import "errors"

// ErrInjected is the error returned by every injected failure, so tests
// can assert the failure they caused is the failure they observed.
var ErrInjected = errors.New("faultinject: injected fault")
