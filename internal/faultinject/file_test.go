package faultinject_test

import (
	"errors"
	"path/filepath"
	"testing"

	"gridsched/internal/faultinject"
	"gridsched/internal/journal"
)

func openInjectedWriter(t *testing.T, mode journal.Mode) (*journal.Writer, *faultinject.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := faultinject.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := journal.OpenWriterFile(f, mode, 0, 0, 0, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w, f
}

// TestFsyncFailurePoisonsWriter proves the audit claim the journal's doc
// comment makes: an fsync failure is terminal. The failing WaitDurable
// surfaces the injected error, and every subsequent Append fails too —
// the writer must never ack new records over a log whose durability is
// unknown.
func TestFsyncFailurePoisonsWriter(t *testing.T) {
	w, f := openInjectedWriter(t, journal.SyncAlways)
	lsn, err := w.Append([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatalf("healthy fsync: %v", err)
	}

	f.FailSyncs(true)
	lsn, err = w.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("WaitDurable over failing fsync: %v (want ErrInjected)", err)
	}

	// Healing the file must not heal the writer: the poison is permanent.
	f.Restore()
	if _, err := w.Append([]byte("after")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append after fsync poison: %v (want ErrInjected)", err)
	}
	if _, err := w.AppendBatch([][]byte{[]byte("batch")}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("AppendBatch after fsync poison: %v (want ErrInjected)", err)
	}
	if err := w.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Sync after fsync poison: %v (want ErrInjected)", err)
	}
}

// TestWriteFailurePoisonsWriter: same fail-stop contract for short/failed
// writes. After the first injected write error no further record may be
// accepted, and the log's on-disk prefix stays readable.
func TestWriteFailurePoisonsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := faultinject.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := journal.OpenWriterFile(f, journal.SyncAlways, 0, 0, 0, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if _, err := w.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	f.FailWritesAfter(0)
	if _, err := w.Append([]byte("lost")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append over failing write: %v (want ErrInjected)", err)
	}
	f.Restore()
	if _, err := w.Append([]byte("after")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append after write poison: %v (want ErrInjected)", err)
	}
	if f.Injected() == 0 {
		t.Fatal("no fault was actually injected")
	}
	_ = w.Close()

	// The prefix written before the fault must still be recoverable.
	var got []string
	info, err := journal.ReadLog(path, 0, func(lsn uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "keep" || info.LastLSN != 1 {
		t.Fatalf("recovered %v (lastLSN %d), want just %q", got, info.LastLSN, "keep")
	}
}

// TestBatchModeFsyncFailurePoisons: in SyncBatch mode the failure happens
// on the background flusher; WaitDurable and later Appends must still
// observe it rather than acking into the void.
func TestBatchModeFsyncFailurePoisons(t *testing.T) {
	w, f := openInjectedWriter(t, journal.SyncBatch)
	f.FailSyncs(true)
	lsn, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	_ = lsn
	// Force the flush instead of waiting out the batch interval.
	if err := w.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Sync over failing fsync: %v (want ErrInjected)", err)
	}
	if _, err := w.Append([]byte("after")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append after batch fsync poison: %v (want ErrInjected)", err)
	}
}
